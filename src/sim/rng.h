// Seeded random number generation for deterministic simulations.
//
// Every stochastic component in the library draws from an explicitly passed
// Rng so that a simulation run is a pure function of (scenario, seed).  The
// helpers cover the distributions the workload and path models need:
// uniform, Bernoulli, exponential, normal, log-normal, Pareto and discrete.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace vstream::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponential with the given mean (mean > 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal parameterized by the *median* and the shape sigma of the
  /// underlying normal.  median = exp(mu), so mu = ln(median).
  double lognormal_median(double median, double sigma);

  /// Pareto with scale x_m (minimum) and shape alpha.
  double pareto(double x_m, double alpha);

  /// Index in [0, weights.size()) drawn proportionally to weights.
  std::size_t discrete(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Derive an independent child generator (for parallel components).
  Rng fork();

  /// Draw the seed a fork() child would be built from (consumes exactly the
  /// same master state as fork()).  Lets callers defer child construction —
  /// e.g. ship the seed to a worker thread — while keeping the master
  /// sequence identical to an immediate fork().
  std::uint64_t fork_seed() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace vstream::sim
