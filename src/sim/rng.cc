#include "sim/rng.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace vstream::sim {

double Rng::lognormal_median(double median, double sigma) {
  if (median <= 0.0) throw std::invalid_argument("lognormal median must be > 0");
  return std::lognormal_distribution<double>(std::log(median), sigma)(engine_);
}

double Rng::pareto(double x_m, double alpha) {
  if (x_m <= 0.0 || alpha <= 0.0) {
    throw std::invalid_argument("pareto parameters must be > 0");
  }
  // Inverse-CDF sampling: F(x) = 1 - (x_m/x)^alpha.
  const double u = 1.0 - uniform01();  // in (0, 1]
  return x_m / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::discrete(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("discrete: empty weights");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::invalid_argument("discrete: non-positive total");
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: land on the last bucket
}

Rng Rng::fork() {
  return Rng(fork_seed());
}

}  // namespace vstream::sim
