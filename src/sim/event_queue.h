// Discrete-event simulation core: a clock plus a time-ordered event queue.
//
// Components schedule callbacks at absolute simulated times; run() drains
// the queue in time order (FIFO among equal timestamps, so a run is fully
// deterministic for a given seed).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace vstream::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.  Starts at 0 and only moves forward.
  Ms now() const { return now_; }

  /// Schedule `cb` to run at absolute time `at` (clamped to now()).
  void schedule_at(Ms at, Callback cb);

  /// Schedule `cb` to run `delay` ms from now (negative delays clamp to 0).
  void schedule_in(Ms delay, Callback cb);

  /// Number of pending events.
  std::size_t pending() const { return queue_.size(); }

  /// Run events until the queue is empty or `until` is reached (the event at
  /// exactly `until` still runs).  Returns the number of events executed.
  std::size_t run(Ms until = -1.0);

  /// Drop all pending events (used to abort a scenario).
  void clear();

 private:
  struct Entry {
    Ms at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Ms now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace vstream::sim
