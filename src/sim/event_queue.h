// Discrete-event simulation core: a clock plus a time-ordered event queue.
//
// Components schedule callbacks at absolute simulated times; run_all() /
// run_until() drain the queue in time order (FIFO among equal timestamps,
// so a run is fully deterministic for a given seed).
//
// The queue is built for the engine's hot path — one event per chunk per
// session, hundreds of thousands per run:
//
//   * callbacks live in a slab-allocated pool of fixed-size slots with a
//     free list, so steady-state scheduling performs no heap allocation:
//     a slot freed by one event is reused by the next.  Callables up to
//     kInlineBytes are constructed in place (small-buffer representation);
//     larger ones fall back to a heap box, still pooled per slot.
//     Slots never move, so callables need not be movable;
//   * ordering is an indexed 4-ary min-heap over (time, seq) — flatter
//     than a binary heap (fewer cache misses per sift) and entries are
//     24-byte PODs instead of heap-owning std::function entries.
//
// The (time, seq) FIFO contract is exactly the one the sharded engine's
// bit-identical-output guarantee rests on; tests/sim/event_queue_test.cc
// pins it, including across pool reuse.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace vstream::sim {

class EventQueue {
 public:
  /// Inline storage per pooled slot; covers every callback the simulator
  /// schedules (capturing lambdas of a few pointers, std::function copies).
  static constexpr std::size_t kInlineBytes = 48;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  ~EventQueue() { clear(); }

  /// Current simulated time.  Starts at 0 and only moves forward.
  Ms now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at`.  Scheduling in the past
  /// clamps to now(): the event fires at the current time, after events
  /// already pending at now() (FIFO order is by scheduling sequence).
  template <typename F>
  void schedule_at(Ms at, F&& fn) {
    const std::uint32_t index = emplace_callback(std::forward<F>(fn));
    push_node(at < now_ ? now_ : at, index);
  }

  /// Schedule `fn` to run `delay` ms from now (negative delays clamp to 0).
  template <typename F>
  void schedule_in(Ms delay, F&& fn) {
    schedule_at(now_ + (delay > 0.0 ? delay : 0.0), std::forward<F>(fn));
  }

  /// Number of pending events.
  std::size_t pending() const { return heap_.size(); }

  /// Run events until the queue is empty; the clock ends at the last
  /// event's timestamp.  Returns the number of events executed.
  std::size_t run_all();

  /// Run events with timestamp <= `until` (the event at exactly `until`
  /// still runs), then advance the clock to `until` even if the queue
  /// emptied earlier.  Returns the number of events executed.
  std::size_t run_until(Ms until);

  /// Drop all pending events (used to abort a scenario); their slots
  /// return to the pool.  The clock does not move.
  void clear();

  /// clear() plus rewind the clock and the FIFO sequence counter to the
  /// initial state, keeping the pool's slabs — lets a workspace reuse one
  /// queue across many independent simulations without reallocating.
  void reset();

  /// Pool introspection (tests, allocation accounting).
  std::size_t pool_slots() const { return slabs_.size() * kSlabSlots; }
  std::size_t pool_free() const;

 private:
  static constexpr std::uint32_t kSlabSlots = 256;
  static constexpr std::uint32_t kNoSlot = 0xffff'ffffu;

  /// One pooled event: inline callable storage plus its vtable-free
  /// invoke/destroy thunks.  `next_free` threads the free list.
  struct Slot {
    alignas(std::max_align_t) unsigned char storage[kInlineBytes];
    void (*invoke)(unsigned char*) = nullptr;
    void (*destroy)(unsigned char*) = nullptr;  // null: trivially destructible
    std::uint32_t next_free = kNoSlot;
  };

  /// Heap entry: 24 bytes, POD, ordered by (at, seq) — seq gives FIFO
  /// among equal timestamps.
  struct Node {
    Ms at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  Slot& slot(std::uint32_t index) {
    return slabs_[index / kSlabSlots][index % kSlabSlots];
  }

  template <typename F>
  std::uint32_t emplace_callback(F&& fn) {
    using Fn = std::decay_t<F>;
    const std::uint32_t index = acquire_slot();
    Slot& s = slot(index);
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(s.storage)) Fn(std::forward<F>(fn));
      s.invoke = [](unsigned char* p) {
        (*std::launder(reinterpret_cast<Fn*>(p)))();
      };
      if constexpr (std::is_trivially_destructible_v<Fn>) {
        s.destroy = nullptr;
      } else {
        s.destroy = [](unsigned char* p) {
          std::launder(reinterpret_cast<Fn*>(p))->~Fn();
        };
      }
    } else {
      // Oversized callable: box it on the heap, pool the pointer.
      ::new (static_cast<void*>(s.storage)) Fn*(new Fn(std::forward<F>(fn)));
      s.invoke = [](unsigned char* p) {
        (**std::launder(reinterpret_cast<Fn**>(p)))();
      };
      s.destroy = [](unsigned char* p) {
        delete *std::launder(reinterpret_cast<Fn**>(p));
      };
    }
    return index;
  }

  std::uint32_t acquire_slot();
  void destroy_slot(std::uint32_t index);  // run destructor, push on free list
  void push_node(Ms at, std::uint32_t index);
  Node pop_min();
  std::size_t drain(Ms until, bool bounded);

  Ms now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::vector<Node> heap_;
  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::uint32_t free_head_ = kNoSlot;
};

}  // namespace vstream::sim
