// Fault schedules: the *what and when* of injected failures.
//
// The paper can only observe the service's failure modes ("directing client
// requests to different servers" after an incident hits a cold cache, §1 /
// §4.1); it could never control them.  A FaultSchedule is a deterministic
// list of failure epochs — scripted by a test/bench, or drawn stochastically
// from per-component rates under a fixed seed — that the FaultInjector
// replays onto a running fleet through the simulation event queue.  Two runs
// with the same scenario seed and the same schedule produce bit-identical
// datasets.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace vstream::faults {

enum class FaultKind : std::uint8_t {
  kServerCrash,      ///< one server down (target: pop, server)
  kPopBlackout,      ///< a whole PoP dark (target: pop)
  kBackendOutage,    ///< origin unreachable fleet-wide (misses fail)
  kBackendSlowdown,  ///< origin D_BE multiplied by `magnitude` fleet-wide
  kDiskDegradation,  ///< one server's disk reads multiplied by `magnitude`
  kLossBurst,        ///< extra random loss `magnitude` on all client paths
  kOverload,         ///< flash crowd on one server: offered load at
                     ///< `magnitude` times nominal capacity (sheds past the
                     ///< watermark; see cdn/overload.h)
};

const char* to_string(FaultKind kind);

/// One failure epoch: [at_ms, at_ms + duration_ms).
struct FaultEvent {
  FaultKind kind = FaultKind::kServerCrash;
  sim::Ms at_ms = 0.0;
  sim::Ms duration_ms = 0.0;
  std::uint32_t pop = 0;     ///< target PoP (server/PoP-scoped kinds)
  std::uint32_t server = 0;  ///< target server within the PoP
  /// Slowdown multiplier (kBackendSlowdown, kDiskDegradation) or extra
  /// per-segment loss probability (kLossBurst); unused otherwise.
  double magnitude = 1.0;

  sim::Ms end_ms() const { return at_ms + duration_ms; }
  bool active_at(sim::Ms now) const { return now >= at_ms && now < end_ms(); }
};

/// Per-hour rates for the stochastic generator.  A rate of 0 disables that
/// fault class.  Durations and magnitudes are log-normal draws.
struct StochasticFaultConfig {
  sim::Ms horizon_ms = sim::seconds(600.0);  ///< schedule covers [0, horizon)

  double server_crashes_per_hour = 0.0;  ///< per server
  sim::Ms crash_duration_median_ms = sim::seconds(60.0);
  double crash_duration_sigma = 0.5;

  double pop_blackouts_per_hour = 0.0;  ///< per PoP
  sim::Ms blackout_duration_median_ms = sim::seconds(30.0);
  double blackout_duration_sigma = 0.5;

  double backend_outages_per_hour = 0.0;  ///< fleet-wide
  sim::Ms outage_duration_median_ms = sim::seconds(20.0);
  double outage_duration_sigma = 0.5;

  double backend_slowdowns_per_hour = 0.0;  ///< fleet-wide
  sim::Ms slowdown_duration_median_ms = sim::seconds(45.0);
  double slowdown_duration_sigma = 0.5;
  double slowdown_multiplier = 6.0;

  double disk_degradations_per_hour = 0.0;  ///< per server
  sim::Ms disk_duration_median_ms = sim::seconds(60.0);
  double disk_duration_sigma = 0.5;
  double disk_multiplier = 5.0;

  double loss_bursts_per_hour = 0.0;  ///< affecting all client paths
  sim::Ms burst_duration_median_ms = sim::seconds(10.0);
  double burst_duration_sigma = 0.5;
  double burst_extra_loss = 0.05;

  double overloads_per_hour = 0.0;  ///< per server (flash crowds)
  sim::Ms overload_duration_median_ms = sim::seconds(40.0);
  double overload_duration_sigma = 0.5;
  double overload_multiplier = 2.0;  ///< offered load vs nominal capacity
};

/// An immutable, time-sorted list of fault epochs.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Build from an explicit event list (sorted by start time internally).
  static FaultSchedule scripted(std::vector<FaultEvent> events);

  /// Draw a schedule from per-component Poisson processes: for each fault
  /// class and target, exponential inter-arrival gaps at the configured
  /// rate until the horizon.  Targets are visited in a fixed order, so the
  /// result is a pure function of (config, fleet shape, rng state).
  static FaultSchedule stochastic(const StochasticFaultConfig& config,
                                  std::uint32_t pop_count,
                                  std::uint32_t servers_per_pop,
                                  sim::Rng& rng);

  /// The CLI-named profiles ("none", "eventful", "overload"), defined once
  /// here so a run (`vstream-sim --fault-profile P`) and its offline
  /// attribution pass (`vstream-analyze --attribution --fault-profile P`)
  /// rebuild the identical fault world.  Returns nullopt for an unknown
  /// name.
  static std::optional<FaultSchedule> named(std::string_view name);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Sum of the extra client-path loss of all kLossBurst epochs covering
  /// `now` (the injector applies this on top of each session's base loss).
  double extra_client_loss(sim::Ms now) const;

  /// True if any fault epoch covers `now`.
  bool any_active(sim::Ms now) const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace vstream::faults
