#include "faults/fault_schedule.h"

#include <algorithm>

namespace vstream::faults {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kServerCrash: return "server-crash";
    case FaultKind::kPopBlackout: return "pop-blackout";
    case FaultKind::kBackendOutage: return "backend-outage";
    case FaultKind::kBackendSlowdown: return "backend-slowdown";
    case FaultKind::kDiskDegradation: return "disk-degradation";
    case FaultKind::kLossBurst: return "loss-burst";
    case FaultKind::kOverload: return "overload";
  }
  return "unknown";
}

namespace {

void sort_events(std::vector<FaultEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_ms < b.at_ms;
                   });
}

/// Poisson arrivals on [0, horizon) at `per_hour`, one event per arrival.
template <typename Emit>
void draw_arrivals(double per_hour, sim::Ms horizon_ms, sim::Rng& rng,
                   Emit&& emit) {
  if (per_hour <= 0.0) return;
  const double mean_gap_ms = 3'600'000.0 / per_hour;
  sim::Ms t = rng.exponential(mean_gap_ms);
  while (t < horizon_ms) {
    emit(t);
    t += rng.exponential(mean_gap_ms);
  }
}

}  // namespace

FaultSchedule FaultSchedule::scripted(std::vector<FaultEvent> events) {
  FaultSchedule schedule;
  schedule.events_ = std::move(events);
  sort_events(schedule.events_);
  return schedule;
}

std::optional<FaultSchedule> FaultSchedule::named(std::string_view name) {
  if (name == "none") return FaultSchedule{};
  if (name == "eventful") {
    // One of each recovery path: crash (failover), backend outage (miss
    // errors), loss burst, disk degradation (slow reads / timeouts).
    return scripted({
        {FaultKind::kServerCrash, 5'000.0, 60'000.0, 0, 1, 1.0},
        {FaultKind::kBackendOutage, 20'000.0, 30'000.0, 0, 0, 1.0},
        {FaultKind::kLossBurst, 40'000.0, 25'000.0, 0, 0, 0.05},
        {FaultKind::kDiskDegradation, 70'000.0, 40'000.0, 1, 0, 8.0},
    });
  }
  if (name == "overload") {
    // Flash crowd on PoP 0 plus an origin brownout: shedding, breakers
    // and hedging all engage.
    return scripted({
        {FaultKind::kOverload, 2'000.0, 90'000.0, 0, 0, 3.0},
        {FaultKind::kOverload, 2'000.0, 90'000.0, 0, 1, 3.0},
        {FaultKind::kOverload, 2'000.0, 90'000.0, 0, 2, 2.0},
        {FaultKind::kBackendSlowdown, 10'000.0, 60'000.0, 0, 0, 8.0},
        {FaultKind::kBackendOutage, 80'000.0, 15'000.0, 0, 0, 1.0},
    });
  }
  return std::nullopt;
}

FaultSchedule FaultSchedule::stochastic(const StochasticFaultConfig& config,
                                        std::uint32_t pop_count,
                                        std::uint32_t servers_per_pop,
                                        sim::Rng& rng) {
  FaultSchedule schedule;
  auto& events = schedule.events_;

  // Fixed visiting order (kind, then target) keeps the draw sequence — and
  // therefore the schedule — a pure function of the rng state.
  for (std::uint32_t pop = 0; pop < pop_count; ++pop) {
    for (std::uint32_t server = 0; server < servers_per_pop; ++server) {
      draw_arrivals(config.server_crashes_per_hour, config.horizon_ms, rng,
                    [&](sim::Ms at) {
                      events.push_back(
                          {FaultKind::kServerCrash, at,
                           rng.lognormal_median(config.crash_duration_median_ms,
                                                config.crash_duration_sigma),
                           pop, server, 1.0});
                    });
    }
  }
  for (std::uint32_t pop = 0; pop < pop_count; ++pop) {
    draw_arrivals(config.pop_blackouts_per_hour, config.horizon_ms, rng,
                  [&](sim::Ms at) {
                    events.push_back(
                        {FaultKind::kPopBlackout, at,
                         rng.lognormal_median(config.blackout_duration_median_ms,
                                              config.blackout_duration_sigma),
                         pop, 0, 1.0});
                  });
  }
  draw_arrivals(config.backend_outages_per_hour, config.horizon_ms, rng,
                [&](sim::Ms at) {
                  events.push_back(
                      {FaultKind::kBackendOutage, at,
                       rng.lognormal_median(config.outage_duration_median_ms,
                                            config.outage_duration_sigma),
                       0, 0, 1.0});
                });
  draw_arrivals(config.backend_slowdowns_per_hour, config.horizon_ms, rng,
                [&](sim::Ms at) {
                  events.push_back(
                      {FaultKind::kBackendSlowdown, at,
                       rng.lognormal_median(config.slowdown_duration_median_ms,
                                            config.slowdown_duration_sigma),
                       0, 0, config.slowdown_multiplier});
                });
  for (std::uint32_t pop = 0; pop < pop_count; ++pop) {
    for (std::uint32_t server = 0; server < servers_per_pop; ++server) {
      draw_arrivals(config.disk_degradations_per_hour, config.horizon_ms, rng,
                    [&](sim::Ms at) {
                      events.push_back(
                          {FaultKind::kDiskDegradation, at,
                           rng.lognormal_median(config.disk_duration_median_ms,
                                                config.disk_duration_sigma),
                           pop, server, config.disk_multiplier});
                    });
    }
  }
  draw_arrivals(config.loss_bursts_per_hour, config.horizon_ms, rng,
                [&](sim::Ms at) {
                  events.push_back(
                      {FaultKind::kLossBurst, at,
                       rng.lognormal_median(config.burst_duration_median_ms,
                                            config.burst_duration_sigma),
                       0, 0, config.burst_extra_loss});
                });
  for (std::uint32_t pop = 0; pop < pop_count; ++pop) {
    for (std::uint32_t server = 0; server < servers_per_pop; ++server) {
      draw_arrivals(
          config.overloads_per_hour, config.horizon_ms, rng, [&](sim::Ms at) {
            events.push_back(
                {FaultKind::kOverload, at,
                 rng.lognormal_median(config.overload_duration_median_ms,
                                      config.overload_duration_sigma),
                 pop, server, config.overload_multiplier});
          });
    }
  }

  sort_events(events);
  return schedule;
}

double FaultSchedule::extra_client_loss(sim::Ms now) const {
  double extra = 0.0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kLossBurst && e.active_at(now)) {
      extra += e.magnitude;
    }
  }
  return extra;
}

bool FaultSchedule::any_active(sim::Ms now) const {
  return std::any_of(events_.begin(), events_.end(),
                     [now](const FaultEvent& e) { return e.active_at(now); });
}

}  // namespace vstream::faults
