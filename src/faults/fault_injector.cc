#include "faults/fault_injector.h"

namespace vstream::faults {

FaultInjector::FaultInjector(cdn::Fleet& fleet, sim::EventQueue& queue,
                             FaultSchedule schedule)
    : fleet_(fleet), queue_(queue), schedule_(std::move(schedule)) {
  for (const FaultEvent& event : schedule_.events()) {
    if (event.kind == FaultKind::kOverload) {
      fleet_.add_overload_window({event.pop, event.server}, event.at_ms,
                                 event.end_ms(), event.magnitude);
    }
  }
}

void FaultInjector::arm() {
  for (const FaultEvent& event : schedule_.events()) {
    queue_.schedule_at(event.at_ms, [this, &event] { apply(event, true); });
    queue_.schedule_at(event.end_ms(), [this, &event] { apply(event, false); });
  }
}

void FaultInjector::apply(const FaultEvent& event, bool start) {
  if (start) ++applied_;
  const auto adjust = [start](int& depth) {
    depth += start ? 1 : -1;
    return depth > 0;
  };
  const std::uint32_t server_idx =
      event.pop * fleet_.servers_per_pop() + event.server;

  switch (event.kind) {
    case FaultKind::kServerCrash:
      fleet_.set_server_down({event.pop, event.server},
                             adjust(crash_depth_[server_idx]));
      break;
    case FaultKind::kPopBlackout:
      fleet_.set_pop_down(event.pop, adjust(blackout_depth_[event.pop]));
      break;
    case FaultKind::kBackendOutage: {
      const bool down = adjust(backend_outage_depth_);
      for (std::uint32_t p = 0; p < fleet_.pop_count(); ++p) {
        for (std::uint32_t s = 0; s < fleet_.servers_per_pop(); ++s) {
          fleet_.server({p, s}).set_backend_down(down);
        }
      }
      break;
    }
    case FaultKind::kBackendSlowdown: {
      // Overlapping slowdowns: the epoch's own magnitude applies while any
      // epoch is active; the last revert restores 1.0.
      const double factor =
          adjust(backend_slowdown_depth_) ? event.magnitude : 1.0;
      for (std::uint32_t p = 0; p < fleet_.pop_count(); ++p) {
        for (std::uint32_t s = 0; s < fleet_.servers_per_pop(); ++s) {
          fleet_.server({p, s}).set_backend_slowdown(factor);
        }
      }
      break;
    }
    case FaultKind::kDiskDegradation: {
      const double factor =
          adjust(disk_depth_[server_idx]) ? event.magnitude : 1.0;
      fleet_.server({event.pop, event.server}).set_disk_degradation(factor);
      break;
    }
    case FaultKind::kLossBurst:
      break;  // query-based: sessions read extra_client_loss() per chunk
    case FaultKind::kOverload: {
      const double factor =
          adjust(overload_depth_[server_idx]) ? event.magnitude : 1.0;
      fleet_.set_overload({event.pop, event.server}, factor);
      break;
    }
  }
}

}  // namespace vstream::faults
