// FaultInjector: replays a FaultSchedule onto a live fleet.
//
// arm() schedules one apply and one revert callback per fault epoch on the
// simulation event queue, so faults strike *during* a run, interleaved with
// chunk requests in true timestamp order.  Overlapping epochs of the same
// kind on the same target are reference-counted: a component comes back up
// only when its last covering epoch ends.
//
// Client-path loss bursts have no fleet-side switch to flip; sessions query
// extra_client_loss() at each chunk instead (see core::Pipeline).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "cdn/fleet.h"
#include "faults/fault_schedule.h"
#include "sim/event_queue.h"

namespace vstream::faults {

class FaultInjector {
 public:
  /// Both `fleet` and `queue` must outlive the injector.
  /// Registers the schedule's kOverload epochs as Fleet overload windows at
  /// construction, so health-aware routing is a pure function of
  /// (schedule, now) — available before any epoch is applied, and identical
  /// on every shard.
  FaultInjector(cdn::Fleet& fleet, sim::EventQueue& queue,
                FaultSchedule schedule);

  /// Schedule every epoch's apply/revert on the queue.  Call once, before
  /// the queue runs; idempotence is not provided.
  void arm();

  const FaultSchedule& schedule() const { return schedule_; }

  /// Extra client-path random loss active at `now` (loss-burst epochs).
  double extra_client_loss(sim::Ms now) const {
    return schedule_.extra_client_loss(now);
  }

  /// Fault epochs applied so far (apply events fired by the queue).
  std::uint64_t applied_count() const { return applied_; }

 private:
  void apply(const FaultEvent& event, bool start);

  cdn::Fleet& fleet_;
  sim::EventQueue& queue_;
  FaultSchedule schedule_;

  // Reference counts for overlapping epochs, keyed by linear target index.
  std::unordered_map<std::uint32_t, int> crash_depth_;
  std::unordered_map<std::uint32_t, int> blackout_depth_;
  std::unordered_map<std::uint32_t, int> disk_depth_;
  std::unordered_map<std::uint32_t, int> overload_depth_;
  int backend_outage_depth_ = 0;
  int backend_slowdown_depth_ = 0;
  std::uint64_t applied_ = 0;
};

}  // namespace vstream::faults
