#include "analysis/aggregate.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>

#include "analysis/stats.h"

namespace vstream::analysis {

SessionNetMetrics session_net_metrics(const telemetry::JoinedSession& session) {
  SessionNetMetrics m;

  std::vector<double> srtt_samples;
  srtt_samples.reserve(session.snapshots.size());
  for (const telemetry::TcpSnapshotRecord* snap : session.snapshots) {
    if (snap->info.srtt_ms > 0.0) srtt_samples.push_back(snap->info.srtt_ms);
  }
  if (srtt_samples.empty()) return m;

  double baseline_min = std::numeric_limits<double>::infinity();
  for (const telemetry::JoinedChunk& chunk : session.chunks) {
    if (chunk.player == nullptr || chunk.cdn == nullptr) continue;
    // rtt0 upper bound from Eq. 1: D_FB - (D_CDN + D_BE) (still includes
    // the DS share, hence "upper bound").
    const double rtt0_bound =
        chunk.player->dfb_ms - chunk.cdn->dcdn_ms() - chunk.cdn->dbe_ms;
    double baseline = std::numeric_limits<double>::infinity();
    if (rtt0_bound > 0.0) baseline = rtt0_bound;
    if (chunk.last_snapshot != nullptr && chunk.last_snapshot->info.srtt_ms > 0.0) {
      baseline = std::min(baseline, chunk.last_snapshot->info.srtt_ms);
    }
    if (baseline < baseline_min) baseline_min = baseline;

    if (chunk.player->chunk_id == 0 && chunk.last_snapshot != nullptr) {
      m.first_chunk_srtt_ms = chunk.last_snapshot->info.srtt_ms;
    }
  }
  if (!std::isfinite(baseline_min)) baseline_min = srtt_samples.front();

  m.valid = true;
  m.srtt_min_ms = baseline_min;
  m.srtt_mean_ms = mean_of(srtt_samples);
  m.srtt_stddev_ms = stddev_of(srtt_samples);
  m.srtt_cv = m.srtt_mean_ms == 0.0 ? 0.0 : m.srtt_stddev_ms / m.srtt_mean_ms;
  return m;
}

namespace {

struct PrefixAccumulator {
  std::size_t sessions = 0;
  double srtt_min = std::numeric_limits<double>::infinity();
  double mean_srtt_sum = 0.0;
  double distance_sum = 0.0;
  std::string country;
  std::string org;
  net::AccessType access = net::AccessType::kResidential;
};

}  // namespace

std::vector<PrefixRollup> rollup_prefixes(const telemetry::JoinedDataset& data) {
  std::unordered_map<net::Prefix24, PrefixAccumulator> acc;
  for (const telemetry::JoinedSession& session : data.sessions()) {
    const SessionNetMetrics m = session_net_metrics(session);
    if (!m.valid) continue;
    const net::Prefix24 prefix = net::prefix24_of(session.player->client_ip);
    PrefixAccumulator& a = acc[prefix];
    ++a.sessions;
    a.srtt_min = std::min(a.srtt_min, m.srtt_min_ms);
    a.mean_srtt_sum += m.srtt_mean_ms;
    a.distance_sum += session.cdn->client_distance_km;
    a.country = session.cdn->country;
    a.org = session.cdn->org;
    a.access = session.cdn->access;
  }

  std::vector<PrefixRollup> rollups;
  rollups.reserve(acc.size());
  for (const auto& [prefix, a] : acc) {
    PrefixRollup r;
    r.prefix = prefix;
    r.session_count = a.sessions;
    r.srtt_min_ms = a.srtt_min;
    r.mean_srtt_ms = a.mean_srtt_sum / static_cast<double>(a.sessions);
    r.distance_km = a.distance_sum / static_cast<double>(a.sessions);
    r.country = a.country;
    r.org = a.org;
    r.access = a.access;
    rollups.push_back(std::move(r));
  }
  std::sort(rollups.begin(), rollups.end(),
            [](const PrefixRollup& a, const PrefixRollup& b) {
              return a.prefix < b.prefix;
            });
  return rollups;
}

std::vector<OrgCvRow> org_cv_table(const telemetry::JoinedDataset& data,
                                   std::size_t min_sessions) {
  std::map<std::string, OrgCvRow> rows;
  for (const telemetry::JoinedSession& session : data.sessions()) {
    const SessionNetMetrics m = session_net_metrics(session);
    if (!m.valid) continue;
    OrgCvRow& row = rows[session.cdn->org];
    row.org = session.cdn->org;
    row.access = session.cdn->access;
    ++row.total_sessions;
    if (m.srtt_cv > 1.0) ++row.high_cv_sessions;
  }

  std::vector<OrgCvRow> table;
  for (auto& [org, row] : rows) {
    if (row.total_sessions >= min_sessions) table.push_back(std::move(row));
  }
  std::sort(table.begin(), table.end(), [](const OrgCvRow& a, const OrgCvRow& b) {
    return a.percent() > b.percent();
  });
  return table;
}

std::vector<double> path_cv_values(const telemetry::JoinedDataset& data,
                                   std::size_t min_sessions) {
  // Path = (client /24 prefix, serving PoP); sample = session average SRTT.
  std::map<std::pair<net::Prefix24, std::uint32_t>, std::vector<double>> paths;
  for (const telemetry::JoinedSession& session : data.sessions()) {
    const SessionNetMetrics m = session_net_metrics(session);
    if (!m.valid) continue;
    const net::Prefix24 prefix = net::prefix24_of(session.player->client_ip);
    paths[{prefix, session.cdn->pop}].push_back(m.srtt_mean_ms);
  }
  std::vector<double> cvs;
  cvs.reserve(paths.size());
  for (const auto& [path, samples] : paths) {
    if (samples.size() < min_sessions) continue;
    cvs.push_back(cv_of(samples));
  }
  return cvs;
}

TailPrefixStudy persistent_tail_prefixes(const telemetry::JoinedDataset& data,
                                         double threshold_ms,
                                         std::size_t epochs,
                                         double persistence_fraction,
                                         std::size_t min_present_epochs) {
  TailPrefixStudy study;
  if (data.sessions().empty() || epochs == 0) return study;

  // Epoch boundaries over the session arrival span ("days" in the paper;
  // equal time slices of the synthetic trace here).
  double t_min = std::numeric_limits<double>::infinity();
  double t_max = -std::numeric_limits<double>::infinity();
  for (const telemetry::JoinedSession& s : data.sessions()) {
    t_min = std::min(t_min, s.player->start_time_ms);
    t_max = std::max(t_max, s.player->start_time_ms);
  }
  const double span = std::max(1.0, t_max - t_min);

  struct Recurrence {
    std::vector<double> epoch_min;  // per-epoch srtt_min, inf if absent
    std::size_t sessions = 0;
    std::size_t tail_sessions = 0;
  };
  std::unordered_map<net::Prefix24, Recurrence> rec;
  for (const telemetry::JoinedSession& session : data.sessions()) {
    const SessionNetMetrics m = session_net_metrics(session);
    if (!m.valid) continue;
    const net::Prefix24 prefix = net::prefix24_of(session.player->client_ip);
    auto& r = rec[prefix];
    if (r.epoch_min.empty()) {
      r.epoch_min.assign(epochs, std::numeric_limits<double>::infinity());
    }
    auto e = static_cast<std::size_t>(
        (session.player->start_time_ms - t_min) / span * static_cast<double>(epochs));
    e = std::min(e, epochs - 1);
    r.epoch_min[e] = std::min(r.epoch_min[e], m.srtt_min_ms);
    ++r.sessions;
    if (m.srtt_min_ms > threshold_ms) ++r.tail_sessions;
  }
  study.total_prefix_count = rec.size();

  // Recurrence frequency: #epochs in tail / #epochs with data; ties broken
  // by the share of sessions in the tail (persistent problems slow every
  // session, transient congestion only some).
  struct Ranked {
    double recurrence;
    double session_tail_share;
    net::Prefix24 prefix;
  };
  std::vector<Ranked> ranked;
  for (const auto& [prefix, r] : rec) {
    std::size_t present = 0, in_tail = 0;
    for (const double v : r.epoch_min) {
      if (!std::isfinite(v)) continue;
      ++present;
      if (v > threshold_ms) ++in_tail;
    }
    if (in_tail == 0 || present < min_present_epochs) continue;
    ranked.push_back(
        Ranked{static_cast<double>(in_tail) / static_cast<double>(present),
               static_cast<double>(r.tail_sessions) /
                   static_cast<double>(r.sessions),
               prefix});
  }
  study.tail_prefix_count = ranked.size();
  if (ranked.empty()) return study;

  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.recurrence != b.recurrence) return a.recurrence > b.recurrence;
    if (a.session_tail_share != b.session_tail_share) {
      return a.session_tail_share > b.session_tail_share;
    }
    return a.prefix < b.prefix;
  });
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(persistence_fraction *
                                  static_cast<double>(ranked.size())));

  std::unordered_map<net::Prefix24, bool> keep_set;
  for (std::size_t i = 0; i < keep && i < ranked.size(); ++i) {
    keep_set[ranked[i].prefix] = true;
  }

  std::size_t non_us = 0;
  for (PrefixRollup& rollup : rollup_prefixes(data)) {
    if (!keep_set.contains(rollup.prefix)) continue;
    if (rollup.country != "US") ++non_us;
    study.persistent_tail.push_back(std::move(rollup));
  }
  if (!study.persistent_tail.empty()) {
    study.non_us_share = static_cast<double>(non_us) /
                         static_cast<double>(study.persistent_tail.size());
  }
  return study;
}

}  // namespace vstream::analysis
