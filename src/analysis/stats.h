// Descriptive statistics: summaries, quantiles, CDF/CCDF series, binned
// series (the paper's bar-with-IQR plots), correlation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace vstream::analysis {

struct SummaryStats {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;

  /// Interquartile range (the error bars of Figs. 4, 7, 19).
  double iqr() const { return p75 - p25; }
  /// Coefficient of variation (the paper's CV(SRTT) metric, §4.2-2).
  double cv() const { return mean == 0.0 ? 0.0 : stddev / mean; }
};

/// Quantile of an ascending-sorted sample (linear interpolation, q in [0,1]).
double quantile_sorted(std::span<const double> sorted, double q);

double mean_of(std::span<const double> values);
/// Population standard deviation.
double stddev_of(std::span<const double> values);
/// Coefficient of variation: stddev / mean (0 when mean == 0).
double cv_of(std::span<const double> values);

/// Full summary; copies and sorts internally.
SummaryStats summarize(std::vector<double> values);

struct CdfPoint {
  double x = 0.0;
  double p = 0.0;  ///< P(X <= x) for CDFs, P(X > x) for CCDFs
};

/// Empirical CDF downsampled to at most `max_points` points.
std::vector<CdfPoint> make_cdf(std::vector<double> values,
                               std::size_t max_points = 100);

/// Empirical CCDF (1 - CDF), e.g. Fig. 3a, Fig. 11c.
std::vector<CdfPoint> make_ccdf(std::vector<double> values,
                                std::size_t max_points = 100);

/// Fraction of values <= x (exact, no downsampling).
double cdf_at(std::vector<double> values, double x);

/// One bin of a binned series.
struct Bin {
  double center = 0.0;
  SummaryStats stats;  ///< stats of y over samples whose x is in the bin
};

/// Bin (x, y) pairs into fixed-width bins over [x_min, x_max); samples
/// outside the range are dropped.  Empty bins are omitted.
std::vector<Bin> bin_series(std::span<const double> x,
                            std::span<const double> y, double x_min,
                            double x_max, double bin_width);

/// Pearson correlation coefficient; 0 for degenerate inputs.
double pearson(std::span<const double> x, std::span<const double> y);

/// A two-sided bootstrap confidence interval for a statistic of a sample.
struct ConfidenceInterval {
  double point = 0.0;  ///< statistic on the full sample
  double lo = 0.0;
  double hi = 0.0;

  bool contains(double value) const { return value >= lo && value <= hi; }
};

/// Percentile bootstrap for the mean: resample with replacement
/// `resamples` times and take the (alpha/2, 1-alpha/2) percentiles.
/// Deterministic given `seed`.  Useful for deciding whether a bench delta
/// (e.g. paced vs unpaced re-buffering) is real at the chosen sample size.
ConfidenceInterval bootstrap_mean_ci(std::span<const double> values,
                                     double alpha = 0.05,
                                     std::size_t resamples = 1'000,
                                     std::uint64_t seed = 1);

}  // namespace vstream::analysis
