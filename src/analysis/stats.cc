#include "analysis/stats.h"

#include <algorithm>
#include <cmath>

#include "sim/rng.h"

namespace vstream::analysis {

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev_of(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean_of(values);
  double acc = 0.0;
  for (const double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double cv_of(std::span<const double> values) {
  const double m = mean_of(values);
  return m == 0.0 ? 0.0 : stddev_of(values) / m;
}

SummaryStats summarize(std::vector<double> values) {
  SummaryStats s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.n = values.size();
  s.mean = mean_of(values);
  s.stddev = stddev_of(values);
  s.min = values.front();
  s.max = values.back();
  s.median = quantile_sorted(values, 0.5);
  s.p25 = quantile_sorted(values, 0.25);
  s.p75 = quantile_sorted(values, 0.75);
  s.p95 = quantile_sorted(values, 0.95);
  return s;
}

namespace {

std::vector<CdfPoint> make_distribution(std::vector<double> values,
                                        std::size_t max_points,
                                        bool complementary) {
  std::vector<CdfPoint> points;
  if (values.empty()) return points;
  std::sort(values.begin(), values.end());
  max_points = std::max<std::size_t>(2, max_points);
  const std::size_t n = values.size();
  const std::size_t step = std::max<std::size_t>(1, n / max_points);
  points.reserve(n / step + 2);
  for (std::size_t i = 0; i < n; i += step) {
    const double p = static_cast<double>(i + 1) / static_cast<double>(n);
    points.push_back({values[i], complementary ? 1.0 - p : p});
  }
  // Always include the exact tail point.
  const double p_last = 1.0;
  points.push_back({values[n - 1], complementary ? 0.0 : p_last});
  return points;
}

}  // namespace

std::vector<CdfPoint> make_cdf(std::vector<double> values,
                               std::size_t max_points) {
  return make_distribution(std::move(values), max_points, false);
}

std::vector<CdfPoint> make_ccdf(std::vector<double> values,
                                std::size_t max_points) {
  return make_distribution(std::move(values), max_points, true);
}

double cdf_at(std::vector<double> values, double x) {
  if (values.empty()) return 0.0;
  std::size_t count = 0;
  for (const double v : values) {
    if (v <= x) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

std::vector<Bin> bin_series(std::span<const double> x,
                            std::span<const double> y, double x_min,
                            double x_max, double bin_width) {
  std::vector<Bin> bins;
  if (x.size() != y.size() || x.empty() || bin_width <= 0.0 || x_max <= x_min) {
    return bins;
  }
  const auto bin_count =
      static_cast<std::size_t>(std::ceil((x_max - x_min) / bin_width));
  std::vector<std::vector<double>> buckets(bin_count);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < x_min || x[i] >= x_max) continue;
    const auto b = static_cast<std::size_t>((x[i] - x_min) / bin_width);
    buckets[std::min(b, bin_count - 1)].push_back(y[i]);
  }
  for (std::size_t b = 0; b < bin_count; ++b) {
    if (buckets[b].empty()) continue;
    Bin bin;
    bin.center = x_min + (static_cast<double>(b) + 0.5) * bin_width;
    bin.stats = summarize(std::move(buckets[b]));
    bins.push_back(std::move(bin));
  }
  return bins;
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> values,
                                     double alpha, std::size_t resamples,
                                     std::uint64_t seed) {
  ConfidenceInterval ci;
  if (values.empty()) return ci;
  ci.point = mean_of(values);
  if (values.size() == 1 || resamples == 0) {
    ci.lo = ci.hi = ci.point;
    return ci;
  }
  sim::Rng rng(seed);
  std::vector<double> means;
  means.reserve(resamples);
  const auto n = static_cast<std::int64_t>(values.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      sum += values[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    }
    means.push_back(sum / static_cast<double>(n));
  }
  std::sort(means.begin(), means.end());
  ci.lo = quantile_sorted(means, alpha / 2.0);
  ci.hi = quantile_sorted(means, 1.0 - alpha / 2.0);
  return ci;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double mx = mean_of(x);
  const double my = mean_of(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace vstream::analysis
