// Quality-of-Experience metrics.
//
// The paper grounds its impact statements in the QoE metrics prior work
// ties to engagement (§4, citing Dobrian et al. and Krishnan & Sitaraman):
// startup delay, re-buffering ratio, average bitrate and rendering
// quality.  This module computes them per session and in aggregate so
// experiments compare like with like.
#pragma once

#include <cstdint>

#include "analysis/stats.h"
#include "telemetry/join.h"

namespace vstream::analysis {

struct SessionQoe {
  double startup_ms = 0.0;
  double rebuffer_rate_pct = 0.0;    ///< stall time / session wall time
  std::uint32_t rebuffer_events = 0;
  double avg_bitrate_kbps = 0.0;
  double dropped_frame_pct = 0.0;    ///< over visible chunks
  std::uint32_t bitrate_switches = 0;
  std::size_t chunks = 0;
};

/// Per-session QoE from the joined records; `startup_ms` comes from the
/// player session record.
SessionQoe session_qoe(const telemetry::JoinedSession& session);

struct QoeAggregate {
  SummaryStats startup_ms;
  SummaryStats rebuffer_rate_pct;
  SummaryStats avg_bitrate_kbps;
  SummaryStats dropped_frame_pct;
  double share_with_rebuffering = 0.0;
  std::size_t sessions = 0;
};

QoeAggregate aggregate_qoe(const telemetry::JoinedDataset& data);

}  // namespace vstream::analysis
