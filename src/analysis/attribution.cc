#include "analysis/attribution.h"

#include <algorithm>
#include <numeric>
#include <ostream>

namespace vstream::analysis {

double qoe_penalty(const SessionQoe& qoe, const PenaltyWeights& weights) {
  const double startup_s = qoe.startup_ms / 1'000.0;
  const double deficit_mbps =
      std::max(0.0, weights.top_bitrate_kbps - qoe.avg_bitrate_kbps) /
      1'000.0;
  return startup_s * weights.startup_per_s +
         qoe.rebuffer_rate_pct * weights.rebuffer_per_pct +
         deficit_mbps * weights.bitrate_deficit_per_mbps;
}

std::vector<std::size_t> worst_sessions(const std::vector<SessionQoe>& qoes,
                                        std::size_t n,
                                        const PenaltyWeights& weights) {
  std::vector<std::size_t> order(qoes.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const std::size_t take = std::min(n, order.size());
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      const double pa = qoe_penalty(qoes[a], weights);
                      const double pb = qoe_penalty(qoes[b], weights);
                      if (pa != pb) return pa > pb;
                      return a < b;
                    });
  order.resize(take);
  return order;
}

SessionAttribution attribute_session(
    std::uint64_t session_id, double baseline_penalty,
    const double (&ideal_penalty)[cdn::kIdealizedSubsystemCount]) {
  SessionAttribution result;
  result.session_id = session_id;
  result.baseline_penalty = baseline_penalty;

  double raw[cdn::kIdealizedSubsystemCount];
  double raw_sum = 0.0;
  for (std::size_t i = 0; i < cdn::kIdealizedSubsystemCount; ++i) {
    result.ideal_penalty[i] = ideal_penalty[i];
    raw[i] = std::max(0.0, baseline_penalty - ideal_penalty[i]);
    raw_sum += raw[i];
  }

  // Overlapping fixes each claim the shared improvement; normalizing by
  // max(baseline, Σ raw) caps the blame total at 1 without ever inflating
  // a non-overlapping breakdown.
  const double denom = std::max(baseline_penalty, raw_sum);
  double blame_sum = 0.0;
  if (denom > 0.0) {
    for (std::size_t i = 0; i < cdn::kIdealizedSubsystemCount; ++i) {
      result.blame[i] = raw[i] / denom;
      blame_sum += result.blame[i];
    }
  }
  result.residual =
      baseline_penalty > 0.0 ? std::max(0.0, 1.0 - blame_sum) : 0.0;
  return result;
}

double AttributionReport::mean_blame(std::size_t index) const {
  if (sessions.empty()) return 0.0;
  double sum = 0.0;
  for (const SessionAttribution& s : sessions) sum += s.blame[index];
  return sum / static_cast<double>(sessions.size());
}

double AttributionReport::mean_residual() const {
  if (sessions.empty()) return 0.0;
  double sum = 0.0;
  for (const SessionAttribution& s : sessions) sum += s.residual;
  return sum / static_cast<double>(sessions.size());
}

namespace {

void write_blame_object(std::ostream& out, const double (&values)[
                            cdn::kIdealizedSubsystemCount]) {
  out << "{";
  for (std::size_t i = 0; i < cdn::kIdealizedSubsystemCount; ++i) {
    if (i != 0) out << ", ";
    out << "\"" << cdn::idealization_name(cdn::kIdealizedSubsystems[i])
        << "\": " << values[i];
  }
  out << "}";
}

}  // namespace

void write_attribution_json(std::ostream& out,
                            const AttributionReport& report) {
  out << "{\n";
  out << "  \"schema\": \"vstream-attribution-v1\",\n";
  out << "  \"sessions_analyzed\": " << report.sessions_analyzed << ",\n";
  out << "  \"worst_n\": " << report.sessions.size() << ",\n";
  out << "  \"weights\": {\"startup_per_s\": " << report.weights.startup_per_s
      << ", \"rebuffer_per_pct\": " << report.weights.rebuffer_per_pct
      << ", \"bitrate_deficit_per_mbps\": "
      << report.weights.bitrate_deficit_per_mbps
      << ", \"top_bitrate_kbps\": " << report.weights.top_bitrate_kbps
      << "},\n";

  double mean[cdn::kIdealizedSubsystemCount];
  for (std::size_t i = 0; i < cdn::kIdealizedSubsystemCount; ++i) {
    mean[i] = report.mean_blame(i);
  }
  out << "  \"mean_blame\": ";
  write_blame_object(out, mean);
  out << ",\n";
  out << "  \"mean_residual\": " << report.mean_residual() << ",\n";

  out << "  \"sessions\": [";
  bool first = true;
  for (const SessionAttribution& s : report.sessions) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"session_id\": " << s.session_id
        << ", \"baseline_penalty\": " << s.baseline_penalty
        << ", \"replay_matches_baseline\": "
        << (s.baseline_matches ? "true" : "false") << ",\n";
    out << "     \"ideal_penalty\": ";
    write_blame_object(out, s.ideal_penalty);
    out << ",\n";
    out << "     \"blame\": ";
    write_blame_object(out, s.blame);
    out << ", \"residual\": " << s.residual << "}";
  }
  out << "\n  ]\n";
  out << "}\n";
}

}  // namespace vstream::analysis
