#include "analysis/accumulators.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <limits>
#include <unordered_map>

#include "analysis/stats.h"

namespace vstream::analysis {

namespace {

/// Sort captured per-session entries into ascending session-id order —
/// the canonical fold order every finalize() uses, and the order the
/// batch functions iterate a JoinedDataset in.
template <typename Entry>
void sort_by_session(std::vector<Entry>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.session_id < b.session_id;
            });
}

template <typename Entry>
void append_entries(std::vector<Entry>& into, std::vector<Entry>&& from) {
  into.insert(into.end(), std::make_move_iterator(from.begin()),
              std::make_move_iterator(from.end()));
}

}  // namespace

// ----------------------------------------------------------- QoeAccumulator

void QoeAccumulator::add(const telemetry::JoinedSession& session) {
  entries_.push_back(Entry{session.session_id, session_qoe(session)});
}

void QoeAccumulator::merge(QoeAccumulator&& other) {
  append_entries(entries_, std::move(other.entries_));
}

QoeAggregate QoeAccumulator::finalize() && {
  sort_by_session(entries_);
  QoeAggregate agg;
  std::vector<double> startup, rebuf, bitrate, dropped;
  startup.reserve(entries_.size());
  rebuf.reserve(entries_.size());
  bitrate.reserve(entries_.size());
  dropped.reserve(entries_.size());
  std::size_t with_rebuf = 0;
  for (const Entry& e : entries_) {
    startup.push_back(e.qoe.startup_ms);
    rebuf.push_back(e.qoe.rebuffer_rate_pct);
    bitrate.push_back(e.qoe.avg_bitrate_kbps);
    dropped.push_back(e.qoe.dropped_frame_pct);
    if (e.qoe.rebuffer_events > 0) ++with_rebuf;
  }
  agg.sessions = entries_.size();
  agg.startup_ms = summarize(std::move(startup));
  agg.rebuffer_rate_pct = summarize(std::move(rebuf));
  agg.avg_bitrate_kbps = summarize(std::move(bitrate));
  agg.dropped_frame_pct = summarize(std::move(dropped));
  agg.share_with_rebuffering =
      agg.sessions == 0
          ? 0.0
          : static_cast<double>(with_rebuf) / static_cast<double>(agg.sessions);
  return agg;
}

// -------------------------------------------------- PrefixRollupAccumulator

void PrefixRollupAccumulator::add(const telemetry::JoinedSession& session) {
  const SessionNetMetrics m = session_net_metrics(session);
  if (!m.valid) return;  // the batch roll-up skips these sessions too
  Entry e;
  e.session_id = session.session_id;
  e.prefix = net::prefix24_of(session.player->client_ip);
  e.srtt_min_ms = m.srtt_min_ms;
  e.srtt_mean_ms = m.srtt_mean_ms;
  e.distance_km = session.cdn->client_distance_km;
  e.country = session.cdn->country;
  e.org = session.cdn->org;
  e.access = session.cdn->access;
  entries_.push_back(std::move(e));
}

void PrefixRollupAccumulator::merge(PrefixRollupAccumulator&& other) {
  append_entries(entries_, std::move(other.entries_));
}

std::vector<PrefixRollup> PrefixRollupAccumulator::finalize() && {
  sort_by_session(entries_);

  // Same per-prefix fold as rollup_prefixes(), applied in the same
  // (ascending session id) order: identical FP sums, identical last-wins
  // country/org/access.
  struct Acc {
    std::size_t sessions = 0;
    double srtt_min = std::numeric_limits<double>::infinity();
    double mean_srtt_sum = 0.0;
    double distance_sum = 0.0;
    std::string country;
    std::string org;
    net::AccessType access = net::AccessType::kResidential;
  };
  std::unordered_map<net::Prefix24, Acc> acc;
  for (Entry& e : entries_) {
    Acc& a = acc[e.prefix];
    ++a.sessions;
    a.srtt_min = std::min(a.srtt_min, e.srtt_min_ms);
    a.mean_srtt_sum += e.srtt_mean_ms;
    a.distance_sum += e.distance_km;
    a.country = std::move(e.country);
    a.org = std::move(e.org);
    a.access = e.access;
  }

  std::vector<PrefixRollup> rollups;
  rollups.reserve(acc.size());
  for (auto& [prefix, a] : acc) {
    PrefixRollup r;
    r.prefix = prefix;
    r.session_count = a.sessions;
    r.srtt_min_ms = a.srtt_min;
    r.mean_srtt_ms = a.mean_srtt_sum / static_cast<double>(a.sessions);
    r.distance_km = a.distance_sum / static_cast<double>(a.sessions);
    r.country = std::move(a.country);
    r.org = std::move(a.org);
    r.access = a.access;
    rollups.push_back(std::move(r));
  }
  std::sort(rollups.begin(), rollups.end(),
            [](const PrefixRollup& a, const PrefixRollup& b) {
              return a.prefix < b.prefix;
            });
  return rollups;
}

// ----------------------------------------------------- PerfScoreAccumulator

void PerfScoreAccumulator::add(const telemetry::JoinedSession& session) {
  Entry e;
  e.session_id = session.session_id;
  e.score_min = std::numeric_limits<double>::infinity();
  for (const telemetry::JoinedChunk& chunk : session.chunks) {
    if (chunk.player == nullptr) continue;
    ++e.chunks;
    if (chunk.player->dfb_ms + chunk.player->dlb_ms <= 0.0) continue;
    const double score = perf_score(chunk_duration_s_, chunk.player->dfb_ms,
                                    chunk.player->dlb_ms);
    ++e.scored;
    if (score < 1.0) ++e.bad;
    e.score_sum += score;
    e.score_min = std::min(e.score_min, score);
  }
  if (e.chunks > 0) entries_.push_back(e);
}

void PerfScoreAccumulator::merge(PerfScoreAccumulator&& other) {
  assert(chunk_duration_s_ == other.chunk_duration_s_);
  append_entries(entries_, std::move(other.entries_));
}

PerfScoreSummary PerfScoreAccumulator::finalize() && {
  sort_by_session(entries_);
  PerfScoreSummary summary;
  double score_sum = 0.0;
  double score_min = std::numeric_limits<double>::infinity();
  for (const Entry& e : entries_) {
    summary.chunks += e.chunks;
    summary.scored_chunks += e.scored;
    summary.bad_chunks += e.bad;
    score_sum += e.score_sum;
    score_min = std::min(score_min, e.score_min);
  }
  if (summary.scored_chunks > 0) {
    summary.mean_score =
        score_sum / static_cast<double>(summary.scored_chunks);
    summary.min_score = score_min;
  }
  return summary;
}

// ------------------------------------------------ RecoveryImpactAccumulator

void RecoveryImpactAccumulator::add(const telemetry::JoinedSession& session) {
  Entry e;
  e.session_id = session.session_id;
  e.completed = session.player != nullptr && session.player->completed;
  for (const telemetry::JoinedChunk& chunk : session.chunks) {
    if (chunk.player == nullptr) continue;
    e.retries += chunk.player->retries;
    e.timeouts += chunk.player->timeouts;
    if (chunk.cdn != nullptr && chunk.cdn->served_stale) ++e.stale_chunks;
    if (chunk.cdn != nullptr) {
      if (chunk.cdn->shed) ++e.shed_chunks;
      if (chunk.cdn->hedged) ++e.hedged_chunks;
      if (chunk.cdn->hedge_won) ++e.hedge_wins;
      if (chunk.cdn->served_swr) ++e.swr_chunks;
      if (chunk.cdn->budget_denied) ++e.budget_denied_chunks;
    }
    if (chunk.player->retries > 0 || chunk.player->timeouts > 0 ||
        chunk.player->failed_over) {
      e.affected = true;
      e.recovery_sum += chunk.player->recovery_ms;
      ++e.recovery_chunks;
    }
    if (chunk.player->failed_over) {
      e.failed_over = true;
      e.dfb_failover_sum += chunk.player->dfb_ms;
      ++e.failover_chunks;
    } else if (chunk.player->retries == 0 && chunk.player->timeouts == 0) {
      e.dfb_clean_sum += chunk.player->dfb_ms;
      ++e.clean_chunks;
    }
  }
  e.stall_ms = session.total_rebuffer_ms();
  e.wall_ms = session.duration_ms();
  entries_.push_back(e);
}

void RecoveryImpactAccumulator::merge(RecoveryImpactAccumulator&& other) {
  append_entries(entries_, std::move(other.entries_));
}

RecoveryImpact RecoveryImpactAccumulator::finalize() && {
  sort_by_session(entries_);
  RecoveryImpact impact;
  impact.sessions = entries_.size();
  double recovery_sum = 0.0;
  std::uint64_t recovery_chunks = 0;
  double dfb_failover_sum = 0.0, dfb_clean_sum = 0.0;
  std::uint64_t failover_chunks = 0, clean_chunks = 0;
  double stall_sum = 0.0, wall_sum = 0.0;
  for (const Entry& e : entries_) {
    if (e.completed) ++impact.completed_sessions;
    if (e.failed_over) ++impact.failover_sessions;
    if (e.affected) ++impact.affected_sessions;
    impact.retries += e.retries;
    impact.timeouts += e.timeouts;
    impact.stale_chunks += e.stale_chunks;
    impact.shed_chunks += e.shed_chunks;
    impact.hedged_chunks += e.hedged_chunks;
    impact.hedge_wins += e.hedge_wins;
    impact.swr_chunks += e.swr_chunks;
    impact.budget_denied_chunks += e.budget_denied_chunks;
    recovery_sum += e.recovery_sum;
    recovery_chunks += e.recovery_chunks;
    dfb_failover_sum += e.dfb_failover_sum;
    failover_chunks += e.failover_chunks;
    dfb_clean_sum += e.dfb_clean_sum;
    clean_chunks += e.clean_chunks;
    stall_sum += e.stall_ms;
    wall_sum += e.wall_ms;
  }
  if (recovery_chunks > 0) {
    impact.mean_recovery_ms =
        recovery_sum / static_cast<double>(recovery_chunks);
  }
  if (failover_chunks > 0) {
    impact.mean_dfb_failover_ms =
        dfb_failover_sum / static_cast<double>(failover_chunks);
  }
  if (clean_chunks > 0) {
    impact.mean_dfb_clean_ms =
        dfb_clean_sum / static_cast<double>(clean_chunks);
  }
  if (wall_sum > 0.0) {
    impact.rebuffer_rate_percent = 100.0 * stall_sum / wall_sum;
  }
  return impact;
}

}  // namespace vstream::analysis
