// Session- and prefix-level aggregations for the §4.2 network analyses:
// per-session SRTT metrics, /24 prefix roll-ups, the per-(prefix, PoP) path
// variability of Fig. 10, the enterprise CV table (Table 4) and the
// persistent tail-latency prefix study (Fig. 9).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/path_model.h"
#include "net/prefix.h"
#include "telemetry/join.h"

namespace vstream::analysis {

/// Per-session network-latency metrics, computed from observables only.
struct SessionNetMetrics {
  bool valid = false;
  /// Baseline latency: min over per-chunk baseline samples, where each
  /// chunk's baseline is min(SRTT at the chunk, rtt0 upper bound
  /// D_FB - (D_CDN + D_BE)) — the §4.2-1 methodology.
  double srtt_min_ms = 0.0;
  double srtt_mean_ms = 0.0;    ///< mean of the 500 ms SRTT samples
  double srtt_stddev_ms = 0.0;  ///< sigma_srtt of Fig. 8
  double srtt_cv = 0.0;         ///< CV(SRTT) of §4.2-2
  double first_chunk_srtt_ms = 0.0;  ///< SRTT context of chunk 0 (Fig. 7)
};

SessionNetMetrics session_net_metrics(const telemetry::JoinedSession& session);

/// One /24 prefix rolled up across its sessions.
struct PrefixRollup {
  net::Prefix24 prefix = 0;
  std::size_t session_count = 0;
  double srtt_min_ms = 0.0;     ///< min of session baselines
  double mean_srtt_ms = 0.0;    ///< mean of session mean SRTTs
  double distance_km = 0.0;     ///< mean geo distance to serving PoP
  std::string country;
  std::string org;
  net::AccessType access = net::AccessType::kResidential;
};

std::vector<PrefixRollup> rollup_prefixes(
    const telemetry::JoinedDataset& data);

/// Table 4 row: share of an organization's sessions with CV(SRTT) > 1.
struct OrgCvRow {
  std::string org;
  net::AccessType access = net::AccessType::kResidential;
  std::size_t high_cv_sessions = 0;
  std::size_t total_sessions = 0;

  double percent() const {
    return total_sessions == 0
               ? 0.0
               : 100.0 * static_cast<double>(high_cv_sessions) /
                     static_cast<double>(total_sessions);
  }
};

/// Organizations with at least `min_sessions` sessions, sorted by descending
/// high-CV share (the paper uses >= 50 sessions "to provide enough evidence
/// of persistence").
std::vector<OrgCvRow> org_cv_table(const telemetry::JoinedDataset& data,
                                   std::size_t min_sessions = 50);

/// Fig. 10: CV of latency per (prefix, PoP) path, using each session's
/// average SRTT as one sample; paths need >= `min_sessions` samples.
std::vector<double> path_cv_values(const telemetry::JoinedDataset& data,
                                   std::size_t min_sessions = 3);

/// Fig. 9 methodology: split the dataset into `epochs` equal time slices
/// ("days"), find prefixes in the latency tail (srtt_min > threshold) per
/// epoch, rank by recurrence frequency (ties broken by the share of the
/// prefix's *sessions* in the tail — persistent problems slow every
/// session, transient congestion only some), and return the top
/// `persistence_fraction` as the persistent-tail set.  Prefixes observed
/// in fewer than `min_present_epochs` epochs lack evidence of persistence
/// and are skipped (the paper applies the same kind of support threshold
/// to its org table).
struct TailPrefixStudy {
  std::vector<PrefixRollup> persistent_tail;  ///< the Fig. 9 population
  std::size_t tail_prefix_count = 0;   ///< prefixes ever seen in a tail
  std::size_t total_prefix_count = 0;
  double non_us_share = 0.0;  ///< fraction of the persistent set outside US
};

TailPrefixStudy persistent_tail_prefixes(const telemetry::JoinedDataset& data,
                                         double threshold_ms = 100.0,
                                         std::size_t epochs = 6,
                                         double persistence_fraction = 0.10,
                                         std::size_t min_present_epochs = 3);

}  // namespace vstream::analysis
