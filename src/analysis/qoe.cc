#include "analysis/qoe.h"

namespace vstream::analysis {

SessionQoe session_qoe(const telemetry::JoinedSession& session) {
  SessionQoe qoe;
  qoe.chunks = session.chunks.size();
  if (session.player != nullptr) qoe.startup_ms = session.player->startup_ms;
  qoe.rebuffer_rate_pct = session.rebuffer_rate_percent();
  qoe.avg_bitrate_kbps = session.avg_bitrate_kbps();

  double frames = 0.0, dropped = 0.0;
  std::uint32_t last_bitrate = 0;
  for (const telemetry::JoinedChunk& chunk : session.chunks) {
    if (chunk.player == nullptr) continue;
    qoe.rebuffer_events += chunk.player->rebuffer_count;
    if (chunk.player->visible) {
      frames += chunk.player->total_frames;
      dropped += chunk.player->dropped_frames;
    }
    if (last_bitrate != 0 && chunk.player->bitrate_kbps != last_bitrate) {
      ++qoe.bitrate_switches;
    }
    last_bitrate = chunk.player->bitrate_kbps;
  }
  qoe.dropped_frame_pct = frames == 0.0 ? 0.0 : 100.0 * dropped / frames;
  return qoe;
}

QoeAggregate aggregate_qoe(const telemetry::JoinedDataset& data) {
  QoeAggregate agg;
  std::vector<double> startup, rebuf, bitrate, dropped;
  std::size_t with_rebuf = 0;
  for (const telemetry::JoinedSession& session : data.sessions()) {
    const SessionQoe qoe = session_qoe(session);
    startup.push_back(qoe.startup_ms);
    rebuf.push_back(qoe.rebuffer_rate_pct);
    bitrate.push_back(qoe.avg_bitrate_kbps);
    dropped.push_back(qoe.dropped_frame_pct);
    if (qoe.rebuffer_events > 0) ++with_rebuf;
  }
  agg.sessions = data.sessions().size();
  agg.startup_ms = summarize(std::move(startup));
  agg.rebuffer_rate_pct = summarize(std::move(rebuf));
  agg.avg_bitrate_kbps = summarize(std::move(bitrate));
  agg.dropped_frame_pct = summarize(std::move(dropped));
  agg.share_with_rebuffering =
      agg.sessions == 0
          ? 0.0
          : static_cast<double>(with_rebuf) / static_cast<double>(agg.sessions);
  return agg;
}

}  // namespace vstream::analysis
