#include "analysis/detectors.h"

#include <algorithm>
#include <cmath>

#include "analysis/stats.h"

namespace vstream::analysis {

double perf_score(double chunk_duration_s, sim::Ms dfb_ms, sim::Ms dlb_ms) {
  const sim::Ms total = dfb_ms + dlb_ms;
  if (total <= 0.0) return 0.0;
  return sim::seconds(chunk_duration_s) / total;
}

double instantaneous_throughput_kbps(std::uint64_t chunk_bytes,
                                     sim::Ms dlb_ms) {
  if (dlb_ms <= 0.0) return 0.0;
  return static_cast<double>(chunk_bytes) * 8.0 / dlb_ms;  // bits per ms
}

sim::Ms rto_conservative_ms(const net::TcpInfo& info) {
  return 200.0 + info.srtt_ms + 4.0 * info.rttvar_ms;
}

sim::Ms dds_lower_bound_ms(const telemetry::JoinedChunk& chunk) {
  if (chunk.player == nullptr || chunk.cdn == nullptr ||
      chunk.last_snapshot == nullptr) {
    return 0.0;
  }
  const sim::Ms rto = rto_conservative_ms(chunk.last_snapshot->info);
  const sim::Ms bound = chunk.player->dfb_ms - chunk.cdn->dcdn_ms() -
                        chunk.cdn->dbe_ms - rto;
  return std::max(0.0, bound);
}

DsOutlierResult detect_ds_outliers(const telemetry::JoinedSession& session,
                                   const DsOutlierConfig& config) {
  DsOutlierResult result;
  result.flagged.assign(session.chunks.size(), false);
  if (session.chunks.size() < config.min_chunks) return result;

  // Collect the per-chunk series the screen compares against its own
  // session-level distribution.
  std::vector<double> dfb, tp_inst, tp_conn, srtt, server, cwnd;
  dfb.reserve(session.chunks.size());
  for (const telemetry::JoinedChunk& chunk : session.chunks) {
    if (chunk.player == nullptr || chunk.cdn == nullptr ||
        chunk.last_snapshot == nullptr) {
      return result;  // screen needs the full e2e view for every chunk
    }
    dfb.push_back(chunk.player->dfb_ms);
    tp_inst.push_back(instantaneous_throughput_kbps(chunk.cdn->chunk_bytes,
                                                    chunk.player->dlb_ms));
    tp_conn.push_back(chunk.last_snapshot->info.throughput_estimate_kbps());
    srtt.push_back(chunk.last_snapshot->info.srtt_ms);
    server.push_back(chunk.cdn->server_total_ms());
    cwnd.push_back(static_cast<double>(chunk.last_snapshot->info.cwnd_segments));
  }

  const auto mu_sigma = [](std::span<const double> v) {
    return std::pair<double, double>(mean_of(v), stddev_of(v));
  };
  const auto [mu_dfb, sd_dfb] = mu_sigma(dfb);
  const auto [mu_tp, sd_tp] = mu_sigma(tp_inst);
  const auto [mu_srtt, sd_srtt] = mu_sigma(srtt);
  const auto [mu_server, sd_server] = mu_sigma(server);
  const auto [mu_cwnd, sd_cwnd] = mu_sigma(cwnd);

  for (std::size_t i = 0; i < session.chunks.size(); ++i) {
    const bool dfb_high = dfb[i] > mu_dfb + config.high_sigma * sd_dfb;
    const bool tp_high = tp_inst[i] > mu_tp + config.high_sigma * sd_tp;
    // "other similar latency metrics": network and server within one sigma,
    // and the server-side window not inflated either (Eq. 4's third line).
    const bool srtt_normal = srtt[i] <= mu_srtt + config.normal_sigma * sd_srtt;
    const bool server_normal =
        server[i] <= mu_server + config.normal_sigma * sd_server;
    const bool cwnd_normal = cwnd[i] <= mu_cwnd + config.normal_sigma * sd_cwnd;
    // The connection's own throughput estimate (Eq. 3) must NOT explain
    // the instantaneous rate — otherwise the chunk was just fast, not
    // stack-buffered.
    const bool tp_unexplained =
        tp_inst[i] > config.tp_unexplained_factor * tp_conn[i];
    if (dfb_high && tp_high && tp_unexplained && srtt_normal &&
        server_normal && cwnd_normal) {
      result.flagged[i] = true;
      ++result.flagged_count;
    }
  }
  return result;
}

RecoveryImpact recovery_impact(const telemetry::JoinedDataset& joined) {
  RecoveryImpact impact;
  impact.sessions = joined.sessions().size();

  double recovery_sum = 0.0;
  std::uint64_t recovery_chunks = 0;
  double dfb_failover_sum = 0.0, dfb_clean_sum = 0.0;
  std::uint64_t failover_chunks = 0, clean_chunks = 0;
  double stall_sum = 0.0, wall_sum = 0.0;

  for (const telemetry::JoinedSession& session : joined.sessions()) {
    if (session.player != nullptr && session.player->completed) {
      ++impact.completed_sessions;
    }
    bool session_failed_over = false;
    bool session_affected = false;
    for (const telemetry::JoinedChunk& chunk : session.chunks) {
      if (chunk.player == nullptr) continue;
      impact.retries += chunk.player->retries;
      impact.timeouts += chunk.player->timeouts;
      if (chunk.cdn != nullptr && chunk.cdn->served_stale) {
        ++impact.stale_chunks;
      }
      if (chunk.cdn != nullptr) {
        if (chunk.cdn->shed) ++impact.shed_chunks;
        if (chunk.cdn->hedged) ++impact.hedged_chunks;
        if (chunk.cdn->hedge_won) ++impact.hedge_wins;
        if (chunk.cdn->served_swr) ++impact.swr_chunks;
        if (chunk.cdn->budget_denied) ++impact.budget_denied_chunks;
      }
      if (chunk.player->retries > 0 || chunk.player->timeouts > 0 ||
          chunk.player->failed_over) {
        session_affected = true;
        recovery_sum += chunk.player->recovery_ms;
        ++recovery_chunks;
      }
      if (chunk.player->failed_over) {
        session_failed_over = true;
        dfb_failover_sum += chunk.player->dfb_ms;
        ++failover_chunks;
      } else if (chunk.player->retries == 0 && chunk.player->timeouts == 0) {
        dfb_clean_sum += chunk.player->dfb_ms;
        ++clean_chunks;
      }
    }
    if (session_failed_over) ++impact.failover_sessions;
    if (session_affected) ++impact.affected_sessions;
    stall_sum += session.total_rebuffer_ms();
    wall_sum += session.duration_ms();
  }

  if (recovery_chunks > 0) {
    impact.mean_recovery_ms = recovery_sum / static_cast<double>(recovery_chunks);
  }
  if (failover_chunks > 0) {
    impact.mean_dfb_failover_ms =
        dfb_failover_sum / static_cast<double>(failover_chunks);
  }
  if (clean_chunks > 0) {
    impact.mean_dfb_clean_ms = dfb_clean_sum / static_cast<double>(clean_chunks);
  }
  if (wall_sum > 0.0) {
    impact.rebuffer_rate_percent = 100.0 * stall_sum / wall_sum;
  }
  return impact;
}

}  // namespace vstream::analysis
