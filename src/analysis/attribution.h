// Blame math for counterfactual attribution.
//
// The engine replays a session once per idealized subsystem
// (cdn/idealization.h); this module turns the resulting QoE vector into a
// blame breakdown.  Everything here is pure arithmetic over SessionQoe —
// the replay orchestration lives in engine/attribution.h, so the analysis
// layer stays free of engine dependencies.
//
// Penalty: a scalar "badness" of one session's QoE, the quantity the
// paper's engagement citations make comparable across sessions —
//
//   penalty = startup_s * w_startup
//           + rebuffer_pct * w_rebuffer
//           + max(0, top_kbps - avg_bitrate_kbps)/1000 * w_bitrate
//
// Blame: for each subsystem i, raw_i = max(0, baseline − idealized_i) is
// the penalty that fixing subsystem i alone removes.  Normalizing by
// max(baseline, Σ raw) yields fractions that sum to ≤ 1 even when
// subsystems overlap (fixing either of two subsystems removes the same
// stall); the unexplained remainder is the residual — intrinsic cost
// (startup physics, client rendering) no single-subsystem fix recovers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "analysis/qoe.h"
#include "cdn/idealization.h"

namespace vstream::analysis {

/// Weights of the scalar QoE penalty (see file comment).  Defaults weight
/// one second of startup like one percent of rebuffering like one Mbps of
/// bitrate deficit against the top ladder rung.
struct PenaltyWeights {
  double startup_per_s = 1.0;
  double rebuffer_per_pct = 1.0;
  double bitrate_deficit_per_mbps = 1.0;
  /// Deficit reference: the top rung of the bitrate ladder (kbps).
  double top_bitrate_kbps = 6'000.0;
};

/// Scalar badness of one session's QoE; ≥ 0, lower is better.
double qoe_penalty(const SessionQoe& qoe, const PenaltyWeights& weights = {});

/// Indices of the worst-`n` entries of `qoes` by penalty, worst first.
/// Ties break toward the lower index so the selection is deterministic.
std::vector<std::size_t> worst_sessions(const std::vector<SessionQoe>& qoes,
                                        std::size_t n,
                                        const PenaltyWeights& weights = {});

/// One session's blame breakdown across the idealizable subsystems,
/// indexed by cdn::kIdealizedSubsystems order (cache, network, backend,
/// overload, abr).
struct SessionAttribution {
  std::uint64_t session_id = 0;
  /// Penalty of the factual (kNone) replay.
  double baseline_penalty = 0.0;
  /// Penalty with subsystem i idealized.
  double ideal_penalty[cdn::kIdealizedSubsystemCount] = {};
  /// Blame fraction per subsystem; each in [0, 1], Σ blame ≤ 1.
  double blame[cdn::kIdealizedSubsystemCount] = {};
  /// 1 − Σ blame when baseline_penalty > 0, else 0: the share of the
  /// penalty no single-subsystem fix removes.
  double residual = 0.0;
  /// The kNone replay reproduced the original run's QoE bit-exactly (it
  /// must; false means the replay world diverged from the measured run —
  /// wrong scenario flags, wrong seed — and the blame numbers are suspect).
  bool baseline_matches = true;
};

/// Fold a (baseline, idealized...) penalty vector into blame fractions.
SessionAttribution attribute_session(
    std::uint64_t session_id, double baseline_penalty,
    const double (&ideal_penalty)[cdn::kIdealizedSubsystemCount]);

/// The full worst-N attribution pass, worst session first.
struct AttributionReport {
  std::vector<SessionAttribution> sessions;
  /// Sessions the worst-N were drawn from.
  std::size_t sessions_analyzed = 0;
  PenaltyWeights weights;

  /// Mean blame fraction across the report's sessions for subsystem
  /// `index` (cdn::kIdealizedSubsystems order).
  double mean_blame(std::size_t index) const;
  double mean_residual() const;
};

/// Serialize a report as the BENCH_attribution.json document
/// (schema "vstream-attribution-v1").
void write_attribution_json(std::ostream& out,
                            const AttributionReport& report);

}  // namespace vstream::analysis
