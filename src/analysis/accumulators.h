// Mergeable streaming accumulators for the §4 aggregates.
//
// The batch analyses (aggregate_qoe, rollup_prefixes, recovery_impact)
// fold a fully materialized JoinedDataset.  These accumulators consume
// one JoinedSession at a time — fed from a StreamingJoiner as sessions
// stream off a sink — and so run in O(sessions) memory regardless of the
// chunk count.  Per-shard accumulators merge() into one before finalize.
//
// Determinism: each add() captures only per-session values; finalize()
// sorts the captured entries by session id and folds them in that order.
// The result is therefore a pure function of the per-session records —
// independent of feed order, shard count, or how accumulators were
// merged.  QoeAccumulator and PrefixRollupAccumulator fold in exactly
// the order the batch functions iterate (ascending session id), so their
// output is bit-identical to the batch result.  RecoveryImpactAccumulator
// regroups the batch version's chunk-order sums per session, so its FP
// means can differ from the batch result in the last bits (counts are
// exact); it is deterministic in its own right, just not bit-aligned with
// the batch fold.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/aggregate.h"
#include "analysis/detectors.h"
#include "analysis/qoe.h"

namespace vstream::analysis {

/// Streaming aggregate_qoe(): bit-identical to the batch result.
class QoeAccumulator {
 public:
  void add(const telemetry::JoinedSession& session);
  void merge(QoeAccumulator&& other);
  QoeAggregate finalize() &&;

  std::size_t sessions() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t session_id = 0;
    SessionQoe qoe;
  };
  std::vector<Entry> entries_;
};

/// Streaming rollup_prefixes(): bit-identical to the batch result.
class PrefixRollupAccumulator {
 public:
  void add(const telemetry::JoinedSession& session);
  void merge(PrefixRollupAccumulator&& other);
  std::vector<PrefixRollup> finalize() &&;

 private:
  struct Entry {
    std::uint64_t session_id = 0;
    net::Prefix24 prefix = 0;
    double srtt_min_ms = 0.0;
    double srtt_mean_ms = 0.0;
    double distance_km = 0.0;
    std::string country;
    std::string org;
    net::AccessType access = net::AccessType::kResidential;
  };
  std::vector<Entry> entries_;
};

/// Eq. 2 performance-score roll-up over every joined chunk.
struct PerfScoreSummary {
  std::size_t chunks = 0;         ///< joined chunks seen
  std::size_t scored_chunks = 0;  ///< chunks with D_FB + D_LB > 0
  std::size_t bad_chunks = 0;     ///< perfscore < 1 (drained more than fetched)
  double mean_score = 0.0;        ///< over scored chunks
  double min_score = 0.0;

  double bad_share() const {
    return scored_chunks == 0 ? 0.0
                              : static_cast<double>(bad_chunks) /
                                    static_cast<double>(scored_chunks);
  }
};

class PerfScoreAccumulator {
 public:
  /// `chunk_duration_s` is Eq. 2's tau (workload::Scenario catalog value).
  explicit PerfScoreAccumulator(double chunk_duration_s)
      : chunk_duration_s_(chunk_duration_s) {}

  void add(const telemetry::JoinedSession& session);
  /// Both sides must have been built with the same chunk duration.
  void merge(PerfScoreAccumulator&& other);
  PerfScoreSummary finalize() &&;

 private:
  struct Entry {
    std::uint64_t session_id = 0;
    std::size_t chunks = 0;
    std::size_t scored = 0;
    std::size_t bad = 0;
    double score_sum = 0.0;  ///< in chunk order within the session
    double score_min = 0.0;
  };
  double chunk_duration_s_;
  std::vector<Entry> entries_;
};

/// Streaming recovery_impact().  Counts match the batch result exactly;
/// the FP means (mean_recovery_ms, mean_dfb_*) agree to rounding but not
/// necessarily to the bit (see the header comment).
class RecoveryImpactAccumulator {
 public:
  void add(const telemetry::JoinedSession& session);
  void merge(RecoveryImpactAccumulator&& other);
  RecoveryImpact finalize() &&;

 private:
  struct Entry {
    std::uint64_t session_id = 0;
    bool completed = false;
    bool failed_over = false;
    bool affected = false;
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t stale_chunks = 0;
    std::uint64_t shed_chunks = 0;
    std::uint64_t hedged_chunks = 0;
    std::uint64_t hedge_wins = 0;
    std::uint64_t swr_chunks = 0;
    std::uint64_t budget_denied_chunks = 0;
    double recovery_sum = 0.0;
    std::uint64_t recovery_chunks = 0;
    double dfb_failover_sum = 0.0;
    std::uint64_t failover_chunks = 0;
    double dfb_clean_sum = 0.0;
    std::uint64_t clean_chunks = 0;
    double stall_ms = 0.0;
    double wall_ms = 0.0;
  };
  std::vector<Entry> entries_;
};

}  // namespace vstream::analysis
