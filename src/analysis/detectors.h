// The paper's chunk-level diagnosis methods, reimplemented on observables
// only (never on simulator ground truth):
//
//   * Eq. 2  — performance score: tau / (D_FB + D_LB); < 1 means the chunk
//              drained more buffer than it delivered,
//   * Eq. 3  — server-side throughput estimate MSS * CWND / SRTT
//              (on net::TcpInfo),
//   * Eq. 4  — transient download-stack buffering detector (statistical
//              outlier screen within a session),
//   * Eq. 5  — persistent download-stack latency lower bound via the
//              conservative RTO estimate of rtt0.
#pragma once

#include <cstdint>
#include <vector>

#include "net/tcp_info.h"
#include "sim/time.h"
#include "telemetry/join.h"

namespace vstream::analysis {

/// Eq. 2: perfscore = tau / (D_FB + D_LB).  Score < 1 flags bad chunks.
double perf_score(double chunk_duration_s, sim::Ms dfb_ms, sim::Ms dlb_ms);

/// Instantaneous player-observed throughput of a chunk in kbps:
/// chunk bytes / D_LB (the "TP_inst" of §4.3-1).
double instantaneous_throughput_kbps(std::uint64_t chunk_bytes,
                                     sim::Ms dlb_ms);

/// The paper's conservative RTO formula (footnote 5, RFC 2988 flavour):
/// RTO = 200 ms + srtt + 4 * srttvar.
sim::Ms rto_conservative_ms(const net::TcpInfo& info);

/// Eq. 5: lower bound of download-stack latency for one chunk:
/// D_DS >= D_FB - D_CDN - D_BE - RTO, clamped at 0.  Returns 0 when the
/// chunk lacks either measurement side or a TCP snapshot.
sim::Ms dds_lower_bound_ms(const telemetry::JoinedChunk& chunk);

struct DsOutlierConfig {
  double high_sigma = 2.0;    ///< "abnormally higher": > mean + 2 sigma
  double normal_sigma = 1.0;  ///< "similar": within mean + 1 sigma
  std::size_t min_chunks = 5; ///< sessions shorter than this are skipped
  /// §4.3-1: the spike must be one "the measured connection's throughput
  /// from server (using CWND and SRTT) does not explain" — TP_inst must
  /// exceed the Eq. 3 estimate by this factor.
  double tp_unexplained_factor = 2.0;
};

/// Per-chunk verdict of the Eq. 4 screen for one session.
struct DsOutlierResult {
  std::vector<bool> flagged;  ///< parallel to session.chunks
  std::size_t flagged_count = 0;
};

/// Eq. 4: flag chunks whose D_FB and instantaneous throughput are both
/// > mean + high_sigma * sigma while SRTT, server latency and CWND stay
/// within mean + normal_sigma * sigma — the signature of stack-buffered
/// delivery (Fig. 17).
DsOutlierResult detect_ds_outliers(const telemetry::JoinedSession& session,
                                   const DsOutlierConfig& config = {});

}  // namespace vstream::analysis
