// The paper's chunk-level diagnosis methods, reimplemented on observables
// only (never on simulator ground truth):
//
//   * Eq. 2  — performance score: tau / (D_FB + D_LB); < 1 means the chunk
//              drained more buffer than it delivered,
//   * Eq. 3  — server-side throughput estimate MSS * CWND / SRTT
//              (on net::TcpInfo),
//   * Eq. 4  — transient download-stack buffering detector (statistical
//              outlier screen within a session),
//   * Eq. 5  — persistent download-stack latency lower bound via the
//              conservative RTO estimate of rtt0.
#pragma once

#include <cstdint>
#include <vector>

#include "net/tcp_info.h"
#include "sim/time.h"
#include "telemetry/join.h"

namespace vstream::analysis {

/// Eq. 2: perfscore = tau / (D_FB + D_LB).  Score < 1 flags bad chunks.
double perf_score(double chunk_duration_s, sim::Ms dfb_ms, sim::Ms dlb_ms);

/// Instantaneous player-observed throughput of a chunk in kbps:
/// chunk bytes / D_LB (the "TP_inst" of §4.3-1).
double instantaneous_throughput_kbps(std::uint64_t chunk_bytes,
                                     sim::Ms dlb_ms);

/// The paper's conservative RTO formula (footnote 5, RFC 2988 flavour):
/// RTO = 200 ms + srtt + 4 * srttvar.
sim::Ms rto_conservative_ms(const net::TcpInfo& info);

/// Eq. 5: lower bound of download-stack latency for one chunk:
/// D_DS >= D_FB - D_CDN - D_BE - RTO, clamped at 0.  Returns 0 when the
/// chunk lacks either measurement side or a TCP snapshot.
sim::Ms dds_lower_bound_ms(const telemetry::JoinedChunk& chunk);

struct DsOutlierConfig {
  double high_sigma = 2.0;    ///< "abnormally higher": > mean + 2 sigma
  double normal_sigma = 1.0;  ///< "similar": within mean + 1 sigma
  std::size_t min_chunks = 5; ///< sessions shorter than this are skipped
  /// §4.3-1: the spike must be one "the measured connection's throughput
  /// from server (using CWND and SRTT) does not explain" — TP_inst must
  /// exceed the Eq. 3 estimate by this factor.
  double tp_unexplained_factor = 2.0;
};

/// Per-chunk verdict of the Eq. 4 screen for one session.
struct DsOutlierResult {
  std::vector<bool> flagged;  ///< parallel to session.chunks
  std::size_t flagged_count = 0;
};

/// Eq. 4: flag chunks whose D_FB and instantaneous throughput are both
/// > mean + high_sigma * sigma while SRTT, server latency and CWND stay
/// within mean + normal_sigma * sigma — the signature of stack-buffered
/// delivery (Fig. 17).
DsOutlierResult detect_ds_outliers(const telemetry::JoinedSession& session,
                                   const DsOutlierConfig& config = {});

/// What failure recovery cost the viewers, computed from observables only
/// (the player-side retry/timeout/failover annotations plus the CDN-side
/// stale-serve marks) — the fault-matrix bench's summary row.
struct RecoveryImpact {
  std::size_t sessions = 0;
  std::size_t completed_sessions = 0;
  std::size_t failover_sessions = 0;   ///< >= 1 chunk switched server
  std::size_t affected_sessions = 0;   ///< >= 1 retry, timeout or failover
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t stale_chunks = 0;      ///< served from cache during outage

  // Overload protection (cdn/overload.h), from the CDN-side chunk marks.
  std::uint64_t shed_chunks = 0;          ///< >= 1 attempt load-shed
  std::uint64_t hedged_chunks = 0;        ///< delivered with a hedge issued
  std::uint64_t hedge_wins = 0;           ///< ... where the hedge won
  std::uint64_t swr_chunks = 0;           ///< stale-while-revalidate serves
  std::uint64_t budget_denied_chunks = 0; ///< a retry hit a dry retry budget
  /// Mean recovery time over affected chunks only (0 when none).
  sim::Ms mean_recovery_ms = 0.0;
  /// Mean first-byte delay of chunks on a failed-over connection vs clean
  /// chunks — the §4.1 cold-connection/extra-RTT penalty, made measurable.
  sim::Ms mean_dfb_failover_ms = 0.0;
  sim::Ms mean_dfb_clean_ms = 0.0;
  /// Stall time over wall time, across all sessions (%).
  double rebuffer_rate_percent = 0.0;

  double completion_rate() const {
    return sessions == 0 ? 1.0
                         : static_cast<double>(completed_sessions) /
                               static_cast<double>(sessions);
  }
};

RecoveryImpact recovery_impact(const telemetry::JoinedDataset& joined);

}  // namespace vstream::analysis
