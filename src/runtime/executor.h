// Work-stealing task executor: the shared substrate that decouples
// *logical* shards (the determinism partition) from *physical* threads
// (the concurrency level).
//
// Before this layer, engine::run_sharded spawned exactly one std::thread
// per shard, so the shard count was simultaneously the correctness unit
// and the parallelism knob.  The Executor breaks that coupling: callers
// enumerate independent tasks (shard batches, per-file analysis folds,
// per-stream sorts) and a fixed pool of M workers executes them,
// stealing from each other when their own queues drain.
//
// Design:
//   * fixed worker pool — worker 0 is whatever thread calls
//     parallel_for(); workers 1..M-1 are background threads parked on a
//     condition variable between runs;
//   * per-worker deques — each run pre-splits [0, count) into contiguous
//     blocks, one deque per worker.  Owners pop from the back (LIFO,
//     cache-warm), thieves steal from the front (FIFO, the oldest —
//     i.e. largest remaining — work first);
//   * steal-on-empty — a worker whose own deque drains scans the other
//     deques round-robin and steals one task at a time, so a skewed
//     block (one logical shard holding 10x the sessions, split into
//     batches) is absorbed by whoever is idle;
//   * no allocation on the steady-state submit path — deques are
//     reserved up front per run; enqueueing a task writes into reserved
//     storage and executing one is a plain indexed call;
//   * exception_ptr propagation — the first task exception is captured,
//     the remaining tasks still run (they are independent), and the
//     exception is rethrown on the calling thread after the run ends.
//
// Determinism: the executor never decides *results*, only *placement*.
// Every caller hands it tasks whose outputs land in preallocated,
// task-indexed slots and are merged in task order afterwards, so thread
// count and steal timing are invisible in the output — the property the
// engine's determinism suite proves bit-for-bit.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vstream::runtime {

/// Default logical-shard count for the engine (declared here so the
/// runtime/engine layers agree without an include cycle): high enough
/// that any realistic worker pool has batches to steal, small enough
/// that per-shard replica overhead stays negligible.
inline constexpr std::size_t kDefaultLogicalShards = 64;

/// Observability for one parallel_for run (and the skew tests' evidence
/// that a lopsided partition still spreads across workers).
struct ParallelStats {
  std::size_t tasks = 0;   ///< tasks submitted
  std::size_t steals = 0;  ///< tasks executed by a non-owning worker
  /// Stuck tasks the watchdog reported this run (see Executor docs).
  std::size_t watchdog_reports = 0;
  /// Tasks executed per worker; index 0 is the calling thread.
  std::vector<std::size_t> tasks_per_worker;

  /// Workers that executed at least one task.
  std::size_t workers_used() const {
    std::size_t used = 0;
    for (const std::size_t n : tasks_per_worker) used += (n != 0) ? 1 : 0;
    return used;
  }
};

class Executor {
 public:
  /// A pool of `workers` physical threads (minimum 1).  Worker 0 is the
  /// thread that calls parallel_for; `workers - 1` background threads
  /// are spawned here and parked until a run starts.
  ///
  /// `watchdog_ms` nonzero (or the VSTREAM_WATCHDOG_MS environment
  /// variable — strict positive parse) arms a stuck-task watchdog: each
  /// parallel run spawns one monitor thread that reports any task still
  /// executing past the deadline to stderr, naming the task label,
  /// index, and worker, and counts it in ParallelStats.watchdog_reports.
  /// With VSTREAM_WATCHDOG_FATAL=1 the first report instead aborts the
  /// process with the documented watchdog exit code (5,
  /// core/exit_codes.h) — a hung host call becomes a clean diagnostic
  /// rather than an indefinite hang.  Inline (single-worker/reentrant)
  /// execution is not watched: the calling thread is the one that would
  /// be stuck.
  explicit Executor(std::size_t workers, std::size_t watchdog_ms = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  std::size_t workers() const { return workers_; }

  /// Run `body(i)` once for every i in [0, count), distributed over the
  /// pool, and block until every task finished.  Tasks must be
  /// independent (they run concurrently in unspecified order).  The
  /// first exception thrown by a task is rethrown here after all tasks
  /// ran.  Reentrant calls (a task invoking parallel_for on its own
  /// executor, or a second thread racing a run) degrade safely to
  /// inline serial execution on the calling thread.  `label` names the
  /// task domain in watchdog diagnostics ("shard", "merge", ...).
  /// Every task first evaluates the runtime.task_stall failpoint: a
  /// stall fire sleeps (timing only, never results), an error fire
  /// throws sim::HostIoError through the normal rethrow path.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body,
                    ParallelStats* stats = nullptr,
                    const char* label = "task");

 private:
  /// One worker's task deque.  `items[head..size)` are pending; the
  /// owner pops from the back, thieves take from the front.  The mutex
  /// guards both cursor and storage — critical sections are a handful
  /// of instructions, and tasks are coarse (session batches, file
  /// folds), so contention is irrelevant next to task cost.
  struct WorkerQueue {
    std::mutex mu;
    std::vector<std::size_t> items;
    std::size_t head = 0;
  };

  /// Shared state of one parallel_for run, owned by the caller's stack.
  struct Run {
    const std::function<void(std::size_t)>* body = nullptr;
    std::mutex error_mu;
    std::exception_ptr error;
    ParallelStats* stats = nullptr;
    std::mutex stats_mu;
    const char* label = "task";
    bool watched = false;  ///< workers publish task slots for the watchdog
    std::atomic<std::size_t> watchdog_reports{0};
  };

  /// What each worker is running right now, published for the watchdog.
  struct alignas(64) TaskSlot {
    static constexpr std::size_t kIdle = ~std::size_t{0};
    std::atomic<std::size_t> task{kIdle};
    std::atomic<std::int64_t> started_ns{0};
  };

  void worker_main(std::size_t worker);
  /// Drain tasks (own deque first, then steal) until none remain.
  void execute(Run* run, std::size_t worker);
  /// Watchdog monitor loop; runs on its own thread for watched runs.
  void watchdog_main(Run* run, const std::atomic<bool>* run_done);

  const std::size_t workers_;
  const std::size_t watchdog_ms_;
  const bool watchdog_fatal_;
  std::vector<WorkerQueue> queues_;
  std::vector<TaskSlot> slots_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: a new run (generation) began
  std::condition_variable done_cv_;  ///< caller: a worker left the run
  std::uint64_t generation_ = 0;
  Run* run_ = nullptr;
  std::size_t exited_ = 0;  ///< background workers done with the current run
  bool stop_ = false;

  std::atomic<bool> in_run_{false};  ///< reentrancy guard (inline fallback)
};

/// Resolve the physical worker count: `requested` if nonzero, else the
/// VSTREAM_THREADS environment variable (strict parse — set but invalid
/// throws std::runtime_error naming the variable), else
/// std::thread::hardware_concurrency() (minimum 1).  Mirrors
/// engine::resolve_shard_count, which resolves the *logical* partition;
/// this resolves the *physical* pool.
std::size_t resolve_thread_count(std::size_t requested = 0);

}  // namespace vstream::runtime
