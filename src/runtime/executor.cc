#include "runtime/executor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "failpoints/failpoint.h"
#include "sim/env_util.h"
#include "sim/host_error.h"

namespace vstream::runtime {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Executor::Executor(std::size_t workers, std::size_t watchdog_ms)
    : workers_(std::max<std::size_t>(1, workers)),
      watchdog_ms_(watchdog_ms != 0
                       ? watchdog_ms
                       : sim::positive_env("VSTREAM_WATCHDOG_MS", 0)),
      watchdog_fatal_(sim::string_env("VSTREAM_WATCHDOG_FATAL") == "1"),
      queues_(workers_),
      slots_(workers_) {
  threads_.reserve(workers_ - 1);
  for (std::size_t w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void Executor::worker_main(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    Run* run = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      run = run_;
    }
    execute(run, worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++exited_;
    }
    done_cv_.notify_all();
  }
}

void Executor::execute(Run* run, std::size_t worker) {
  std::size_t executed = 0;
  std::size_t stolen = 0;
  for (;;) {
    std::size_t index = 0;
    bool have = false;
    bool steal = false;
    {
      // Own deque, back first (the block was pushed in reverse, so the
      // owner walks its range in ascending order).
      WorkerQueue& own = queues_[worker];
      std::lock_guard<std::mutex> lock(own.mu);
      if (own.items.size() > own.head) {
        index = own.items.back();
        own.items.pop_back();
        have = true;
      }
    }
    if (!have) {
      // Steal-on-empty: scan the other deques round-robin from our
      // right-hand neighbour, taking the oldest task (front).
      for (std::size_t offset = 1; offset < workers_ && !have; ++offset) {
        WorkerQueue& victim = queues_[(worker + offset) % workers_];
        std::lock_guard<std::mutex> lock(victim.mu);
        if (victim.items.size() > victim.head) {
          index = victim.items[victim.head++];
          have = true;
          steal = true;
        }
      }
    }
    if (!have) break;  // every deque is empty: the run is drained
    if (run->watched) {
      // Publish what this worker is about to run; started_ns first so a
      // watchdog that observes the task index sees a valid start time.
      TaskSlot& slot = slots_[worker];
      slot.started_ns.store(steady_now_ns(), std::memory_order_relaxed);
      slot.task.store(index, std::memory_order_release);
    }
    try {
      // Host-fault hook: a stall fire sleeps here (timing only — the
      // watchdog's quarry), an error fire aborts the task through the
      // run's normal first-exception rethrow.
      if (failpoints::should_fail(failpoints::Site::kRuntimeTaskStall)) {
        throw sim::HostIoError(
            "runtime: injected task fault (failpoint runtime.task_stall)");
      }
      (*run->body)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(run->error_mu);
      if (!run->error) run->error = std::current_exception();
    }
    if (run->watched) {
      slots_[worker].task.store(TaskSlot::kIdle, std::memory_order_release);
    }
    ++executed;
    stolen += steal ? 1 : 0;
  }
  if (run->stats != nullptr && executed != 0) {
    std::lock_guard<std::mutex> lock(run->stats_mu);
    run->stats->tasks_per_worker[worker] += executed;
    run->stats->steals += stolen;
  }
}

void Executor::watchdog_main(Run* run, const std::atomic<bool>* run_done) {
  const auto poll =
      std::chrono::milliseconds(std::max<std::size_t>(1, watchdog_ms_ / 4));
  const std::int64_t deadline_ns =
      static_cast<std::int64_t>(watchdog_ms_) * 1'000'000;
  // One report per stuck (worker, task) occurrence, not one per poll.
  std::vector<std::size_t> reported(workers_, TaskSlot::kIdle);
  while (!run_done->load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(poll);
    for (std::size_t w = 0; w < workers_; ++w) {
      const std::size_t task = slots_[w].task.load(std::memory_order_acquire);
      if (task == TaskSlot::kIdle || reported[w] == task) continue;
      const std::int64_t started =
          slots_[w].started_ns.load(std::memory_order_relaxed);
      const std::int64_t elapsed = steady_now_ns() - started;
      if (elapsed < deadline_ns) continue;
      reported[w] = task;
      run->watchdog_reports.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr,
                   "vstream: watchdog: %s task %zu on worker %zu stuck for "
                   "%lld ms (deadline %zu ms)\n",
                   run->label, task, w,
                   static_cast<long long>(elapsed / 1'000'000), watchdog_ms_);
      if (watchdog_fatal_) {
        std::fprintf(stderr,
                     "vstream: watchdog: aborting (VSTREAM_WATCHDOG_FATAL)\n");
        std::fflush(stderr);
        std::_Exit(5);  // kExitWatchdog, core/exit_codes.h
      }
    }
  }
}

void Executor::parallel_for(std::size_t count,
                            const std::function<void(std::size_t)>& body,
                            ParallelStats* stats, const char* label) {
  if (stats != nullptr) {
    stats->tasks = count;
    stats->steals = 0;
    stats->watchdog_reports = 0;
    stats->tasks_per_worker.assign(workers_, 0);
  }
  if (count == 0) return;

  const bool parallel =
      workers_ > 1 && count > 1 && !in_run_.exchange(true);
  if (!parallel) {
    // Single-worker pools, single tasks, and reentrant calls all run
    // inline on the calling thread — same results, zero coordination.
    // The task_stall failpoint is still evaluated (same count per task
    // as the pooled path), but nothing watches the calling thread.
    for (std::size_t i = 0; i < count; ++i) {
      if (failpoints::should_fail(failpoints::Site::kRuntimeTaskStall)) {
        throw sim::HostIoError(
            "runtime: injected task fault (failpoint runtime.task_stall)");
      }
      body(i);
    }
    if (stats != nullptr) stats->tasks_per_worker[0] += count;
    return;
  }

  // Pre-split [0, count) into one contiguous block per worker, pushed in
  // reverse so the owner's back-pop walks ascending indices.  All deque
  // storage is reserved here; nothing on the per-task path allocates.
  for (std::size_t w = 0; w < workers_; ++w) {
    const std::size_t lo = w * count / workers_;
    const std::size_t hi = (w + 1) * count / workers_;
    WorkerQueue& queue = queues_[w];
    std::lock_guard<std::mutex> lock(queue.mu);
    queue.items.clear();
    queue.head = 0;
    queue.items.reserve(hi - lo);
    for (std::size_t i = hi; i > lo; --i) queue.items.push_back(i - 1);
  }

  Run run;
  run.body = &body;
  run.stats = stats;
  run.label = label;
  run.watched = watchdog_ms_ != 0;

  std::atomic<bool> run_done{false};
  std::thread watchdog;
  if (run.watched) {
    for (TaskSlot& slot : slots_) {
      slot.task.store(TaskSlot::kIdle, std::memory_order_relaxed);
    }
    watchdog = std::thread([this, &run, &run_done] {
      watchdog_main(&run, &run_done);
    });
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    run_ = &run;
    exited_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();

  execute(&run, 0);  // the caller is worker 0

  {
    // Wait for every background worker to leave the run: only then is
    // `run` (stack-owned) guaranteed untouched by other threads.  Each
    // worker enters execute() exactly once per generation, so exited_
    // always reaches workers_ - 1.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return exited_ == workers_ - 1; });
    run_ = nullptr;
  }
  if (run.watched) {
    run_done.store(true, std::memory_order_release);
    watchdog.join();
    if (stats != nullptr) {
      stats->watchdog_reports =
          run.watchdog_reports.load(std::memory_order_relaxed);
    }
  }
  in_run_.store(false);
  if (run.error) std::rethrow_exception(run.error);
}

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return sim::positive_env("VSTREAM_THREADS", hw);
}

}  // namespace vstream::runtime
