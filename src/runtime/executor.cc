#include "runtime/executor.h"

#include <algorithm>

#include "sim/env_util.h"

namespace vstream::runtime {

Executor::Executor(std::size_t workers)
    : workers_(std::max<std::size_t>(1, workers)), queues_(workers_) {
  threads_.reserve(workers_ - 1);
  for (std::size_t w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void Executor::worker_main(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    Run* run = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      run = run_;
    }
    execute(run, worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++exited_;
    }
    done_cv_.notify_all();
  }
}

void Executor::execute(Run* run, std::size_t worker) {
  std::size_t executed = 0;
  std::size_t stolen = 0;
  for (;;) {
    std::size_t index = 0;
    bool have = false;
    bool steal = false;
    {
      // Own deque, back first (the block was pushed in reverse, so the
      // owner walks its range in ascending order).
      WorkerQueue& own = queues_[worker];
      std::lock_guard<std::mutex> lock(own.mu);
      if (own.items.size() > own.head) {
        index = own.items.back();
        own.items.pop_back();
        have = true;
      }
    }
    if (!have) {
      // Steal-on-empty: scan the other deques round-robin from our
      // right-hand neighbour, taking the oldest task (front).
      for (std::size_t offset = 1; offset < workers_ && !have; ++offset) {
        WorkerQueue& victim = queues_[(worker + offset) % workers_];
        std::lock_guard<std::mutex> lock(victim.mu);
        if (victim.items.size() > victim.head) {
          index = victim.items[victim.head++];
          have = true;
          steal = true;
        }
      }
    }
    if (!have) break;  // every deque is empty: the run is drained
    try {
      (*run->body)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(run->error_mu);
      if (!run->error) run->error = std::current_exception();
    }
    ++executed;
    stolen += steal ? 1 : 0;
  }
  if (run->stats != nullptr && executed != 0) {
    std::lock_guard<std::mutex> lock(run->stats_mu);
    run->stats->tasks_per_worker[worker] += executed;
    run->stats->steals += stolen;
  }
}

void Executor::parallel_for(std::size_t count,
                            const std::function<void(std::size_t)>& body,
                            ParallelStats* stats) {
  if (stats != nullptr) {
    stats->tasks = count;
    stats->steals = 0;
    stats->tasks_per_worker.assign(workers_, 0);
  }
  if (count == 0) return;

  const bool parallel =
      workers_ > 1 && count > 1 && !in_run_.exchange(true);
  if (!parallel) {
    // Single-worker pools, single tasks, and reentrant calls all run
    // inline on the calling thread — same results, zero coordination.
    for (std::size_t i = 0; i < count; ++i) body(i);
    if (stats != nullptr) stats->tasks_per_worker[0] += count;
    return;
  }

  // Pre-split [0, count) into one contiguous block per worker, pushed in
  // reverse so the owner's back-pop walks ascending indices.  All deque
  // storage is reserved here; nothing on the per-task path allocates.
  for (std::size_t w = 0; w < workers_; ++w) {
    const std::size_t lo = w * count / workers_;
    const std::size_t hi = (w + 1) * count / workers_;
    WorkerQueue& queue = queues_[w];
    std::lock_guard<std::mutex> lock(queue.mu);
    queue.items.clear();
    queue.head = 0;
    queue.items.reserve(hi - lo);
    for (std::size_t i = hi; i > lo; --i) queue.items.push_back(i - 1);
  }

  Run run;
  run.body = &body;
  run.stats = stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    run_ = &run;
    exited_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();

  execute(&run, 0);  // the caller is worker 0

  {
    // Wait for every background worker to leave the run: only then is
    // `run` (stack-owned) guaranteed untouched by other threads.  Each
    // worker enters execute() exactly once per generation, so exited_
    // always reaches workers_ - 1.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return exited_ == workers_ - 1; });
    run_ = nullptr;
  }
  in_run_.store(false);
  if (run.error) std::rethrow_exception(run.error);
}

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return sim::positive_env("VSTREAM_THREADS", hw);
}

}  // namespace vstream::runtime
