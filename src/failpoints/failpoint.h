// Deterministic host-fault injection: named failpoint sites compiled
// into the I/O and task paths, armed at process start from the
// VSTREAM_FAILPOINTS environment variable.
//
// A *site* is a fixed, enumerated place in the code where the host can
// fail underneath us: a spill write, a checkpoint rename, a CSV flush, a
// shard task that stops making progress.  Sites are compiled in
// unconditionally; a disarmed site costs one relaxed atomic load (a few
// ns — measured as `failpoint_*` metrics in BENCH_hotpaths.json), so
// production runs pay nothing measurable for the instrumentation.
//
// Spec grammar (full definition in DESIGN.md "Host-fault taxonomy"):
//
//   VSTREAM_FAILPOINTS := spec (',' spec)*
//   spec    := site '=' mode ['@' trigger]
//   mode    := 'error'                 inject a host I/O failure
//            | 'stall:<ms>'            sleep <ms> at the site (task sites)
//   trigger := 'once:<n>'              fire exactly once, on armed
//                                      evaluation <n> (0-based)
//            | 'after:<n>'             fire on every armed evaluation
//                                      with index >= <n>
//            | 'prob:<p>[:<seed>]'     fire each evaluation with
//                                      probability p from a seeded
//                                      mt19937_64 (default seed: site
//                                      ordinal)
//            | (absent)                fire on every evaluation
//
//   VSTREAM_FAILPOINTS="spill.write=error@once:40,checkpoint.rename=error"
//
// `once:` / `after:` triggers are deterministic in the site's *armed
// evaluation count*: the N-th evaluation of a site fires regardless of
// thread interleaving whenever the site itself is evaluated a
// deterministic number of times (spill writes per shard, checkpoint
// commits, export flushes all are).  `prob:` draws from one per-site
// locked RNG, so the fire *count* distribution is reproducible for a
// seed but the mapping onto evaluations may vary with thread timing —
// chaos campaigns treat every outcome through the same invariant (clean
// bit-identical completion, or documented abort) so that is fine.
//
// Error injection never fabricates a parallel failure path: an `error`
// fire at an I/O site puts the *real* stream into a failed state (or
// returns true so the caller does), and the production error-checking
// code — the code a real full disk would exercise — detects it and
// throws sim::HostIoError.  The injected fault and the genuine fault
// take the same road.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace vstream::failpoints {

/// The compiled-in sites.  Adding one: extend the enum, kSiteNames, and
/// place a should_fail()/stall check where the host interaction happens.
enum class Site : std::uint8_t {
  kSpillWrite,        ///< SpillWriter::write — a record block write
  kSpillFlush,        ///< SpillWriter::flush_committed — durability flush
  kCheckpointWrite,   ///< engine write_checkpoint — sidecar tmp write
  kCheckpointRename,  ///< engine write_checkpoint — tmp -> sidecar rename
  kExportOpen,        ///< telemetry export — CSV ofstream open
  kExportWrite,       ///< telemetry export — CSV write / final flush
  kRuntimeTaskStall,  ///< runtime::Executor — before a task body runs
};
inline constexpr std::size_t kSiteCount = 7;

/// Canonical site name ("spill.write", ...), as used in specs.
const char* site_name(Site site);
/// Parse a site name; std::nullopt if unknown.
std::optional<Site> parse_site(std::string_view name);

/// What an armed site does when its trigger fires.
enum class Mode : std::uint8_t {
  kError,  ///< inject a host I/O failure through the real error path
  kStall,  ///< sleep stall_ms at the site (task sites; I/O sites just slow)
};

/// Per-site observability, for tests and the chaos harness.
struct SiteCounters {
  std::uint64_t evaluated = 0;  ///< armed evaluations (disarmed not counted)
  std::uint64_t fired = 0;      ///< evaluations whose trigger fired
};

/// Process-wide registry.  Arming/disarming is rare (startup, test
/// setup) and takes a lock; the evaluation fast path for a disarmed site
/// is a single relaxed atomic load.  Armed evaluations take the site
/// lock — sites are coarse (per session block, per checkpoint, per
/// export flush), never per chunk, so contention is irrelevant.
class Registry {
 public:
  static Registry& instance();

  /// Parse and arm a comma-separated spec list (see grammar above).
  /// Throws std::runtime_error naming the offending spec on any parse
  /// error — same strictness as the VSTREAM_* env contract.
  void arm(std::string_view specs);
  /// Arm from VSTREAM_FAILPOINTS; unset or empty arms nothing.
  void arm_from_env();
  /// Disarm every site and zero all counters.
  void disarm_all();

  /// True if any site is armed (cheap; used to skip diagnostics work).
  bool any_armed() const {
    return any_armed_.load(std::memory_order_relaxed);
  }

  /// Evaluate `site`.  Disarmed: returns false, counts nothing, costs
  /// one relaxed load.  Armed: bumps `evaluated`; when the trigger
  /// fires, bumps `fired`, then a kStall mode sleeps inline and returns
  /// false while a kError mode returns true — the caller routes true
  /// through its real host-failure path.
  bool should_fail(Site site) {
    if (!armed_[static_cast<std::size_t>(site)].load(
            std::memory_order_relaxed)) {
      return false;
    }
    return evaluate_armed(site);
  }

  SiteCounters counters(Site site) const;

 private:
  Registry();
  bool evaluate_armed(Site site);

  struct State;  // armed config + counters + RNG, behind one mutex
  State* states_;  // [kSiteCount], heap-allocated once, never freed
  std::atomic<bool> armed_[kSiteCount];
  std::atomic<bool> any_armed_{false};
};

/// Convenience: Registry::instance().should_fail(site).
inline bool should_fail(Site site) {
  return Registry::instance().should_fail(site);
}

}  // namespace vstream::failpoints
