#include "failpoints/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "sim/mt64.h"

namespace vstream::failpoints {
namespace {

constexpr const char* kSiteNames[kSiteCount] = {
    "spill.write",       "spill.flush", "checkpoint.write",
    "checkpoint.rename", "export.open", "export.write",
    "runtime.task_stall",
};

enum class Trigger : std::uint8_t { kAlways, kOnce, kAfter, kProb };

[[noreturn]] void bad_spec(std::string_view spec, const char* why) {
  throw std::runtime_error("VSTREAM_FAILPOINTS: bad spec \"" +
                           std::string(spec) + "\": " + why);
}

/// Parse a non-negative integer field; the whole of `text` must be
/// digits (the env contract's no-trailing-garbage rule).
std::uint64_t parse_u64_field(std::string_view text, std::string_view spec,
                              const char* what) {
  if (text.empty()) bad_spec(spec, what);
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') bad_spec(spec, what);
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

double parse_prob_field(std::string_view text, std::string_view spec) {
  if (text.empty()) bad_spec(spec, "prob trigger needs a probability");
  char* end = nullptr;
  const std::string copy(text);
  const double p = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || !(p > 0.0) || p > 1.0) {
    bad_spec(spec, "probability must be in (0, 1]");
  }
  return p;
}

}  // namespace

/// Armed configuration and counters of one site.  The mutex guards the
/// trigger state and RNG; counters are plain (updated under the lock)
/// and read back through counters() under the same lock.
struct Registry::State {
  std::mutex mu;
  Mode mode = Mode::kError;
  std::uint32_t stall_ms = 0;
  Trigger trigger = Trigger::kAlways;
  std::uint64_t trigger_n = 0;  // once:/after: threshold
  double prob = 0.0;
  sim::Mt64 rng;
  SiteCounters counters;
};

Registry::Registry() : states_(new State[kSiteCount]) {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    armed_[i].store(false, std::memory_order_relaxed);
  }
}

Registry& Registry::instance() {
  static Registry* registry = new Registry;  // immortal: sites outlive main
  return *registry;
}

const char* site_name(Site site) {
  return kSiteNames[static_cast<std::size_t>(site)];
}

std::optional<Site> parse_site(std::string_view name) {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    if (name == kSiteNames[i]) return static_cast<Site>(i);
  }
  return std::nullopt;
}

void Registry::arm(std::string_view specs) {
  std::size_t pos = 0;
  while (pos < specs.size()) {
    std::size_t comma = specs.find(',', pos);
    if (comma == std::string_view::npos) comma = specs.size();
    const std::string_view spec = specs.substr(pos, comma - pos);
    pos = comma + 1;
    if (spec.empty()) bad_spec(specs, "empty spec in list");

    const std::size_t eq = spec.find('=');
    if (eq == std::string_view::npos) bad_spec(spec, "expected site=mode");
    const std::optional<Site> site = parse_site(spec.substr(0, eq));
    if (!site) bad_spec(spec, "unknown site");

    std::string_view rest = spec.substr(eq + 1);
    std::string_view mode_text = rest;
    std::string_view trigger_text;
    const std::size_t at = rest.find('@');
    if (at != std::string_view::npos) {
      mode_text = rest.substr(0, at);
      trigger_text = rest.substr(at + 1);
      if (trigger_text.empty()) bad_spec(spec, "empty trigger after '@'");
    }

    State& state = states_[static_cast<std::size_t>(*site)];
    std::lock_guard<std::mutex> lock(state.mu);

    if (mode_text == "error") {
      state.mode = Mode::kError;
      state.stall_ms = 0;
    } else if (mode_text.rfind("stall:", 0) == 0) {
      state.mode = Mode::kStall;
      state.stall_ms = static_cast<std::uint32_t>(parse_u64_field(
          mode_text.substr(6), spec, "stall needs a millisecond count"));
    } else {
      bad_spec(spec, "mode must be 'error' or 'stall:<ms>'");
    }

    if (trigger_text.empty()) {
      state.trigger = Trigger::kAlways;
    } else if (trigger_text.rfind("once:", 0) == 0) {
      state.trigger = Trigger::kOnce;
      state.trigger_n = parse_u64_field(trigger_text.substr(5), spec,
                                        "once needs an evaluation index");
    } else if (trigger_text.rfind("after:", 0) == 0) {
      state.trigger = Trigger::kAfter;
      state.trigger_n = parse_u64_field(trigger_text.substr(6), spec,
                                        "after needs an evaluation index");
    } else if (trigger_text.rfind("prob:", 0) == 0) {
      std::string_view fields = trigger_text.substr(5);
      const std::size_t colon = fields.find(':');
      std::uint64_t seed = static_cast<std::uint64_t>(*site) + 1;
      if (colon != std::string_view::npos) {
        seed = parse_u64_field(fields.substr(colon + 1), spec,
                               "prob seed must be an integer");
        fields = fields.substr(0, colon);
      }
      state.trigger = Trigger::kProb;
      state.prob = parse_prob_field(fields, spec);
      state.rng.seed(seed);
    } else {
      bad_spec(spec, "trigger must be once:<n>, after:<n>, or prob:<p>");
    }

    state.counters = SiteCounters{};
    armed_[static_cast<std::size_t>(*site)].store(true,
                                                  std::memory_order_relaxed);
    any_armed_.store(true, std::memory_order_relaxed);
  }
}

void Registry::arm_from_env() {
  const char* raw = std::getenv("VSTREAM_FAILPOINTS");
  if (raw == nullptr || raw[0] == '\0') return;
  arm(raw);
}

void Registry::disarm_all() {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    State& state = states_[i];
    std::lock_guard<std::mutex> lock(state.mu);
    state.counters = SiteCounters{};
    armed_[i].store(false, std::memory_order_relaxed);
  }
  any_armed_.store(false, std::memory_order_relaxed);
}

bool Registry::evaluate_armed(Site site) {
  State& state = states_[static_cast<std::size_t>(site)];
  Mode mode;
  std::uint32_t stall_ms;
  bool fired = false;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    const std::uint64_t index = state.counters.evaluated++;
    switch (state.trigger) {
      case Trigger::kAlways:
        fired = true;
        break;
      case Trigger::kOnce:
        fired = index == state.trigger_n;
        break;
      case Trigger::kAfter:
        fired = index >= state.trigger_n;
        break;
      case Trigger::kProb: {
        // Uniform in [0, 1): top 53 bits, the standard double ladder.
        const double u =
            static_cast<double>(state.rng() >> 11) * 0x1.0p-53;
        fired = u < state.prob;
        break;
      }
    }
    if (fired) ++state.counters.fired;
    mode = state.mode;
    stall_ms = state.stall_ms;
  }
  if (!fired) return false;
  if (mode == Mode::kStall) {
    // The stall happens outside the site lock so other threads keep
    // evaluating; it simulates a stuck host interaction, and only ever
    // changes timing, never results.
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
    return false;
  }
  return true;
}

SiteCounters Registry::counters(Site site) const {
  State& state = states_[static_cast<std::size_t>(site)];
  std::lock_guard<std::mutex> lock(state.mu);
  return state.counters;
}

}  // namespace vstream::failpoints
