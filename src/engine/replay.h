// Counterfactual session replay.
//
// The sharded engine makes every session's outcome a pure function of
// (warm archive, session spec, session RNG substream, fault schedule) —
// that is what buys partition invariance.  This module cashes the same
// property in a second way: ANY single session can be re-run on its own,
// long after the original simulation, and reproduce its records
// bit-exactly — or run with exactly one subsystem idealized
// (cdn/idealization.h) to measure what that subsystem cost it.
//
// ReplayContext rebuilds the world exactly as run_simulation() does (same
// master-RNG consumption order, same warm archive, same admission), then
// replays single sessions through one-session Shards.  replay_session()
// is const and thread-safe: replays share the immutable world and each
// construct their own shard-local state, so an Executor can fan a
// worst-N × subsystems matrix out across the pool.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/qoe.h"
#include "cdn/idealization.h"
#include "engine/admission.h"
#include "engine/engine.h"
#include "engine/warmup.h"
#include "workload/population.h"

namespace vstream::engine {

/// One replayed session's outcome.
struct ReplayedSession {
  /// The session's full record set (player/CDN sessions and chunks, TCP
  /// snapshots) from the replay.
  telemetry::Dataset dataset;
  /// QoE of the replayed session, from the same join + metric pass the
  /// analysis tools use.
  analysis::SessionQoe qoe;
  /// False when the player surfaced a fatal error (recovery exhausted).
  bool completed = true;
};

class ReplayContext {
 public:
  /// Rebuild the world for `scenario` + `options`.  Only the
  /// world-shaping options matter (warm_caches, disk_fill, universal_head,
  /// faults, bad_prefixes); execution options (shards, threads, spill,
  /// checkpointing) are ignored — a replay always runs one session on one
  /// shard.  Pass the same scenario and options as the original run or
  /// the replay measures a different world.
  ReplayContext(const workload::Scenario& scenario, RunOptions options = {});

  /// All admitted sessions, in session-id order — the same admission the
  /// original run executed.
  const std::vector<AdmittedSession>& admitted() const { return admitted_; }

  /// The world's scenario after overload-knob resolution.
  const workload::Scenario& scenario() const { return scenario_; }

  /// Re-run one session under `policy`.  A default (kNone) policy is the
  /// factual replay and reproduces the original run's records for this
  /// session bit-exactly.  Returns nullopt for a session id that was
  /// never admitted.  Thread-safe.
  std::optional<ReplayedSession> replay_session(
      std::uint64_t session_id,
      const cdn::IdealizationPolicy& policy = {}) const;

 private:
  workload::Scenario scenario_;
  std::shared_ptr<const workload::VideoCatalog> catalog_;
  /// The admitted specs point into the population's prefix profiles; it
  /// must live as long as they do.
  std::unique_ptr<workload::Population> population_;
  WarmArchive warm_;
  faults::FaultSchedule faults_;
  std::unordered_set<net::Prefix24> bad_prefixes_;
  std::vector<AdmittedSession> admitted_;
};

}  // namespace vstream::engine
