// RunContext: the narrow interface a SessionRuntime sees.
//
// One context per execution domain — the legacy coupled core::Pipeline has
// one, each shard of the sharded engine has its own — binding the services
// a session touches while it streams.  Raw pointers, non-owning: the
// owner (Pipeline or Shard) outlives every session it runs.
#pragma once

#include <unordered_set>
#include <vector>

#include "cdn/ats_server.h"
#include "cdn/fleet.h"
#include "cdn/idealization.h"
#include "engine/ground_truth.h"
#include "engine/warmup.h"
#include "faults/fault_injector.h"
#include "net/prefix.h"
#include "net/tcp_model.h"
#include "telemetry/collector.h"
#include "workload/catalog.h"
#include "workload/scenario.h"

namespace vstream::engine {

struct RunContext {
  const workload::Scenario* scenario = nullptr;
  const workload::VideoCatalog* catalog = nullptr;
  cdn::Fleet* fleet = nullptr;
  telemetry::Collector* collector = nullptr;
  GroundTruth* ground_truth = nullptr;
  /// Null until faults are armed.
  const faults::FaultInjector* injector = nullptr;
  /// Null or empty when no prefixes are flagged (§4.2-1 a-priori hints).
  const std::unordered_set<net::Prefix24>* bad_prefixes = nullptr;
  /// Counterfactual replay: non-null idealizes exactly one subsystem for
  /// every session in this domain (see cdn/idealization.h).  Null — and a
  /// kNone policy — is the bit-exact factual run.
  const cdn::IdealizationPolicy* idealization = nullptr;

  // -- sharded (session-isolated) mode; both null in coupled mode --

  /// Shared immutable warm cache content.  Non-null switches serving to
  /// AtsServer::serve_isolated: outcomes become a pure function of (warm
  /// state, the session's own history, the session's RNG substream), which
  /// is what makes sharded output invariant to the shard count.
  const WarmArchive* warm_archive = nullptr;
  /// Per-server serve counters, indexed pop * servers_per_pop + server.
  std::vector<cdn::ServerStats>* server_stats = nullptr;

  /// Execution-domain scratch for per-round TCP samples.  Sessions within
  /// a domain step strictly sequentially (one event loop), so one buffer,
  /// cleared per chunk, serves them all — its capacity is reused instead
  /// of reallocated on every chunk transfer.  Null falls back to a local
  /// vector (tests that build a bare RunContext).
  std::vector<net::RoundSample>* round_scratch = nullptr;
};

}  // namespace vstream::engine
