// ShardedRunner: deterministic parallel execution of a session set.
//
// Sessions are partitioned by session id across N *logical* shards, each
// shard runs its partition on a private replica stack (see Shard), and
// the per-shard outputs are merged in canonical session-id order.
// Because session outcomes are session-isolated (serve_isolated) and
// fault epochs are pure functions of simulated time, the merged output
// is bit-identical for ANY shard count — shards only change wall-clock
// time, never results.
//
// Logical shards vs physical threads: the shard count defines the
// determinism partition; the *thread* count (ExecOptions.threads /
// VSTREAM_THREADS) defines how many OS threads execute the shards' work
// on the runtime::Executor.  The two are independent knobs — neither
// changes a single output bit (see DESIGN.md "Execution model").
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <unordered_set>
#include <vector>

#include "engine/admission.h"
#include "engine/shard.h"
#include "runtime/executor.h"

namespace vstream::engine {

/// Crash-safe execution config (see engine/checkpoint.h for the model).
/// Requires spill mode: record durability comes from the spill files; a
/// checkpointed in-memory dataset would be lost with the process anyway.
struct CheckpointConfig {
  /// Directory for the per-shard shard-<i>.vckpt sidecars (must exist).
  std::filesystem::path dir;
  /// Resume from existing sidecars.  Missing/corrupt sidecars restart
  /// their shard from zero; a sidecar from a different run configuration
  /// (fingerprint mismatch) throws std::runtime_error.
  bool resume = false;
  /// Sessions per shard between checkpoints (the batch size).
  std::size_t interval = 1000;
  /// run_fingerprint() of the admitted schedule, for resume validation.
  std::uint64_t fingerprint = 0;
  /// Test/chaos hook: stop each shard after this many batches even if work
  /// remains (result.completed turns false).  0 runs to completion.
  std::size_t stop_after_batches = 0;
};

/// Physical execution config: how many OS threads run the logical
/// shards' work, and how finely memory-mode partitions are batched.
struct ExecOptions {
  /// Physical worker threads; 0 resolves via
  /// runtime::resolve_thread_count (VSTREAM_THREADS environment
  /// variable, else hardware concurrency).  Never affects results.
  std::size_t threads = 0;
  /// Memory-mode batch granularity: each shard's partition is split into
  /// batches of this many sessions, each an independent executor task on
  /// a fresh replica (batching is just finer sharding — bit-identical,
  /// proven by the checkpoint-equivalence tests).  Fine batches are what
  /// let work-stealing absorb partition skew: a shard holding 10x the
  /// sessions becomes many steal-able tasks instead of one long one.
  /// 0 uses kDefaultMemoryBatch.  Ignored with one worker (one task per
  /// shard — no replica churn when nothing can steal).
  std::size_t memory_batch = 0;
  /// Spill file format version; 0 resolves via
  /// telemetry::resolve_spill_format (VSTREAM_SPILL_FORMAT, else v3).
  /// Never affects results — only the bytes on disk.
  std::uint32_t spill_format = 0;
};

/// Memory-mode batch size when ExecOptions.memory_batch is 0: small
/// enough that even a worst-case skewed shard splits into dozens of
/// steal-able tasks, large enough that replica construction stays
/// negligible next to the sessions it serves.
inline constexpr std::size_t kDefaultMemoryBatch = 64;

/// Deterministic partition: session id modulo shard_count.  Within each
/// shard, generation order (ascending ids / nondecreasing start times) is
/// preserved.
///
/// Worst-case skew: ids strided by a multiple of shard_count (or
/// clustered in one residue class) land every session in ONE shard —
/// id-modulo is the canonical partition for determinism, not a balanced
/// one.  The executor absorbs the imbalance instead: memory-mode batches
/// (ExecOptions.memory_batch) turn the heavy shard into many steal-able
/// tasks, so idle workers drain it (see the skew tests in
/// tests/engine/merge_test.cc).
std::vector<std::vector<AdmittedSession>> partition_sessions(
    const std::vector<AdmittedSession>& admitted, std::size_t shard_count);

/// Merge shard outputs into one dataset/accounting, re-ordering every
/// record stream into ascending session id (stable within a session, i.e.
/// chunk/time order).  The result is a pure function of the per-session
/// records and therefore independent of the shard count.
ShardResult merge_shard_results(std::vector<ShardResult> parts);

/// Same merge with the five record streams (player/CDN sessions,
/// player/CDN chunks, TCP snapshots) appended and sorted as five
/// independent executor tasks — the streams are disjoint members, so
/// the only shared state is read-only.  `executor` null falls back to
/// the serial loop.  Byte-identical to the serial merge.
ShardResult merge_shard_results(std::vector<ShardResult> parts,
                                runtime::Executor* executor);

/// Run `admitted` partitioned across `shard_count` logical shards on a
/// work-stealing pool of `exec->threads` physical workers (null `exec`
/// resolves ExecOptions{} — VSTREAM_THREADS, else hardware concurrency;
/// one worker runs everything inline on the calling thread).  All
/// reference parameters are read-only for the duration; `faults` and
/// `bad_prefixes` may be null.  `stats` non-null receives the executor's
/// task/steal accounting for the main run (not the merge).
///
/// Task granularity per telemetry mode:
///   memory      one task per memory_batch sessions of a shard, each on
///               a fresh replica — fine-grained, steal-friendly;
///   spill       one task per shard: a shard owns its spill file, so the
///               file is single-writer and the file set stays in shard
///               order for the canonical merge;
///   checkpoint  one task per shard: the sidecar commit sequence within
///               a shard is inherently ordered (batches run sequentially
///               *inside* the task, exactly as before).
///
/// `spill_dir` selects the telemetry storage model: null materializes
/// the merged Dataset in RAM (classic); otherwise each shard streams its
/// completed sessions to <spill_dir>/shard-<i>.vspill through a
/// telemetry::SpillSink, the merged dataset comes back empty, and the
/// result's spill_files lists the per-shard files in shard order.  The
/// directory must already exist.
///
/// `checkpoint` non-null enables crash-safe batched execution (spill mode
/// only — throws std::invalid_argument without `spill_dir`): each shard
/// runs its partition in `checkpoint->interval`-session batches, flushing
/// its spill file and writing a shard-<i>.vckpt sidecar after each batch;
/// with `checkpoint->resume` the shard restarts from its last committed
/// sidecar, truncating the spill file's uncommitted tail.  The merged
/// output is bit-identical to an uninterrupted, checkpoint-free run.
ShardResult run_sharded(const workload::Scenario& scenario,
                        const workload::VideoCatalog& catalog,
                        const WarmArchive& warm,
                        const faults::FaultSchedule* faults,
                        const std::unordered_set<net::Prefix24>* bad_prefixes,
                        const std::vector<AdmittedSession>& admitted,
                        std::size_t shard_count,
                        const std::filesystem::path* spill_dir = nullptr,
                        const CheckpointConfig* checkpoint = nullptr,
                        const ExecOptions* exec = nullptr,
                        runtime::ParallelStats* stats = nullptr);

}  // namespace vstream::engine
