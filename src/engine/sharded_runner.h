// ShardedRunner: deterministic parallel execution of a session set.
//
// Sessions are partitioned by session id across N shards, each shard runs
// its partition on a private replica stack (see Shard), and the per-shard
// outputs are merged in canonical session-id order.  Because session
// outcomes are session-isolated (serve_isolated) and fault epochs are
// pure functions of simulated time, the merged output is bit-identical
// for ANY shard count — shards only change wall-clock time, never results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <unordered_set>
#include <vector>

#include "engine/admission.h"
#include "engine/shard.h"

namespace vstream::engine {

/// Crash-safe execution config (see engine/checkpoint.h for the model).
/// Requires spill mode: record durability comes from the spill files; a
/// checkpointed in-memory dataset would be lost with the process anyway.
struct CheckpointConfig {
  /// Directory for the per-shard shard-<i>.vckpt sidecars (must exist).
  std::filesystem::path dir;
  /// Resume from existing sidecars.  Missing/corrupt sidecars restart
  /// their shard from zero; a sidecar from a different run configuration
  /// (fingerprint mismatch) throws std::runtime_error.
  bool resume = false;
  /// Sessions per shard between checkpoints (the batch size).
  std::size_t interval = 1000;
  /// run_fingerprint() of the admitted schedule, for resume validation.
  std::uint64_t fingerprint = 0;
  /// Test/chaos hook: stop each shard after this many batches even if work
  /// remains (result.completed turns false).  0 runs to completion.
  std::size_t stop_after_batches = 0;
};

/// Deterministic partition: session id modulo shard_count.  Within each
/// shard, generation order (ascending ids / nondecreasing start times) is
/// preserved.
std::vector<std::vector<AdmittedSession>> partition_sessions(
    const std::vector<AdmittedSession>& admitted, std::size_t shard_count);

/// Merge shard outputs into one dataset/accounting, re-ordering every
/// record stream into ascending session id (stable within a session, i.e.
/// chunk/time order).  The result is a pure function of the per-session
/// records and therefore independent of the shard count.
ShardResult merge_shard_results(std::vector<ShardResult> parts);

/// Run `admitted` across `shard_count` workers (1 runs inline on the
/// calling thread).  All reference parameters are read-only for the
/// duration; `faults` and `bad_prefixes` may be null.
///
/// `spill_dir` selects the telemetry storage model: null materializes
/// the merged Dataset in RAM (classic); otherwise each shard streams its
/// completed sessions to <spill_dir>/shard-<i>.vspill through a
/// telemetry::SpillSink, the merged dataset comes back empty, and the
/// result's spill_files lists the per-shard files in shard order.  The
/// directory must already exist.
///
/// `checkpoint` non-null enables crash-safe batched execution (spill mode
/// only — throws std::invalid_argument without `spill_dir`): each shard
/// runs its partition in `checkpoint->interval`-session batches, flushing
/// its spill file and writing a shard-<i>.vckpt sidecar after each batch;
/// with `checkpoint->resume` the shard restarts from its last committed
/// sidecar, truncating the spill file's uncommitted tail.  The merged
/// output is bit-identical to an uninterrupted, checkpoint-free run.
ShardResult run_sharded(const workload::Scenario& scenario,
                        const workload::VideoCatalog& catalog,
                        const WarmArchive& warm,
                        const faults::FaultSchedule* faults,
                        const std::unordered_set<net::Prefix24>* bad_prefixes,
                        const std::vector<AdmittedSession>& admitted,
                        std::size_t shard_count,
                        const std::filesystem::path* spill_dir = nullptr,
                        const CheckpointConfig* checkpoint = nullptr);

}  // namespace vstream::engine
