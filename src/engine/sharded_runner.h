// ShardedRunner: deterministic parallel execution of a session set.
//
// Sessions are partitioned by session id across N shards, each shard runs
// its partition on a private replica stack (see Shard), and the per-shard
// outputs are merged in canonical session-id order.  Because session
// outcomes are session-isolated (serve_isolated) and fault epochs are
// pure functions of simulated time, the merged output is bit-identical
// for ANY shard count — shards only change wall-clock time, never results.
#pragma once

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "engine/admission.h"
#include "engine/shard.h"

namespace vstream::engine {

/// Deterministic partition: session id modulo shard_count.  Within each
/// shard, generation order (ascending ids / nondecreasing start times) is
/// preserved.
std::vector<std::vector<AdmittedSession>> partition_sessions(
    const std::vector<AdmittedSession>& admitted, std::size_t shard_count);

/// Merge shard outputs into one dataset/accounting, re-ordering every
/// record stream into ascending session id (stable within a session, i.e.
/// chunk/time order).  The result is a pure function of the per-session
/// records and therefore independent of the shard count.
ShardResult merge_shard_results(std::vector<ShardResult> parts);

/// Run `admitted` across `shard_count` workers (1 runs inline on the
/// calling thread).  All reference parameters are read-only for the
/// duration; `faults` and `bad_prefixes` may be null.
///
/// `spill_dir` selects the telemetry storage model: null materializes
/// the merged Dataset in RAM (classic); otherwise each shard streams its
/// completed sessions to <spill_dir>/shard-<i>.vspill through a
/// telemetry::SpillSink, the merged dataset comes back empty, and the
/// result's spill_files lists the per-shard files in shard order.  The
/// directory must already exist.
ShardResult run_sharded(const workload::Scenario& scenario,
                        const workload::VideoCatalog& catalog,
                        const WarmArchive& warm,
                        const faults::FaultSchedule* faults,
                        const std::unordered_set<net::Prefix24>* bad_prefixes,
                        const std::vector<AdmittedSession>& admitted,
                        std::size_t shard_count,
                        const std::filesystem::path* spill_dir = nullptr);

}  // namespace vstream::engine
