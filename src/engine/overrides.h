// Per-session knobs for scripted experiments (case studies, ablations).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "client/abr.h"
#include "client/download_stack.h"

namespace vstream::engine {

struct SessionOverrides {
  std::optional<client::DownloadStackProfile> ds_profile;
  /// Per-chunk random-loss override (index = chunk id; missing entries keep
  /// the path default).  Drives the Fig. 13 loss-timing case study.
  std::vector<std::optional<double>> per_chunk_loss;
  std::optional<client::AbrKind> abr;
  std::optional<std::uint32_t> fixed_bitrate_kbps;
  /// Exact number of chunks to stream (clamped to the video's length).
  std::optional<std::uint32_t> chunk_count;
  std::optional<bool> gpu;
  std::optional<double> cpu_load;
  std::optional<double> bottleneck_kbps;
  std::optional<bool> disable_ds_anomalies;
};

}  // namespace vstream::engine
