// One streaming session as a state machine, extracted from the old
// monolithic core::Pipeline.
//
// step() executes exactly one chunk (ABR decision -> server -> TCP
// transfer -> download stack -> playout -> rendering -> telemetry) and
// reports how much wall time passed, so a driver can interleave many
// sessions through an event queue in true timestamp order.  All stochastic
// draws come from the per-session generator handed to the constructor,
// keeping runs deterministic regardless of interleaving.
//
// The runtime talks to the world only through its RunContext.  With
// ctx.warm_archive set it serves chunks through the session-isolated path
// (AtsServer::serve_isolated) — the mode the sharded engine runs in.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "client/abr.h"
#include "client/download_stack.h"
#include "client/playback_buffer.h"
#include "client/rendering.h"
#include "engine/overrides.h"
#include "engine/run_context.h"
#include "net/tcp_model.h"
#include "sim/rng.h"
#include "workload/session_generator.h"

namespace vstream::engine {

class SessionRuntime {
 public:
  /// `rng` is the session's private substream, forked from the master
  /// generator by the caller (so admission order, not construction order,
  /// fixes the substream).  `overrides` may be null; it is copied.
  SessionRuntime(RunContext& ctx, workload::SessionSpec spec, sim::Rng rng,
                 const SessionOverrides* overrides);

  bool has_more() const { return next_chunk_ < spec_.chunk_count; }

  /// Execute chunk next_chunk_ with its request firing at `fleet_now`;
  /// returns the wall time until this session's next request.
  sim::Ms step(sim::Ms fleet_now);

  /// Emit the per-session records (call once, after the last step).
  void finish();

  std::uint64_t session_id() const { return spec_.session_id; }

 private:
  bool resolve_gpu(const SessionOverrides* overrides) const;
  double resolve_cpu_load(const SessionOverrides* overrides) const;

  /// (Re)open the TCP connection to the currently assigned server ref_.
  /// Called at construction and again after a mid-session failover: the new
  /// path carries the new PoP's distance, and the fresh connection restarts
  /// from a cold congestion window — the §4.1 failover penalty.
  void rebuild_connection();

  /// Serve one chunk on the currently assigned server: the live coupled
  /// path, or the session-isolated path when ctx_.warm_archive is set.
  cdn::ServeResult serve_chunk(const cdn::ChunkKey& key, std::uint64_t bytes,
                               sim::Ms now, const cdn::ServeOptions& opts);

  RunContext& ctx_;
  workload::SessionSpec spec_;
  std::optional<SessionOverrides> overrides_;
  sim::Rng rng_;
  cdn::ServerRef ref_;
  double distance_km_;
  client::DownloadStack stack_;
  client::RenderingPath rendering_;
  client::PlaybackBuffer buffer_;
  std::unique_ptr<net::TcpConnection> conn_;
  std::unique_ptr<client::AbrAlgorithm> abr_;

  /// Isolated mode only: this session's private server-state overlays,
  /// keyed by linear server index (a failover must not carry one server's
  /// overlay to another).
  std::unordered_map<std::uint32_t, cdn::SessionServerState> server_states_;

  // Path ingredients kept so a failover can rebuild the connection with
  // the same client-side draws (only the server end changes).
  double bottleneck_kbps_ = 0.0;
  sim::Ms congestion_offset_ms_ = 0.0;
  net::TcpConfig tcp_config_;
  double current_loss_ = 0.0;

  std::uint32_t next_chunk_ = 0;
  double session_clock_ms_ = 0.0;
  double smoothed_tp_kbps_ = 0.0;
  double last_tp_kbps_ = 0.0;
  std::uint32_t last_bitrate_ = 0;
  bool completed_ = true;
};

}  // namespace vstream::engine
