// Per-shard checkpoint sidecars: the durable state a crashed run needs to
// restart from its last committed batch instead of from zero.
//
// A checkpointed run executes each shard's partition in sequential batches
// of `interval` sessions, every batch on a fresh Shard replica.  Because
// session outcomes are session-isolated (own RNG substream, isolated
// serving, fault epochs pure functions of simulated time), running a
// partition in batches is just a finer sharding — covered by the engine's
// shard-count-invariance guarantee — so batch boundaries never change any
// result.  What a batch boundary adds is a durable cut: the shard's spill
// file is flushed, and this sidecar records everything needed to continue
// after the cut.
//
// Contents of one sidecar (shard-<i>.vckpt):
//   * the run fingerprint — a hash over the admitted session schedule,
//     the shard count, and the fault schedule.  Resuming against a
//     different scenario/seed/shard count is a user error and throws
//     (the fingerprints cannot match by construction);
//   * next_index — how many of this shard's sessions are fully committed;
//   * the spill file's committed byte offset and block count (a resumed
//     SpillWriter truncates the uncommitted tail there);
//   * the accumulated GroundTruth and per-server ServerStats of the
//     committed batches (both merge commutatively with later batches).
//
// Admission, the warm archive, and per-session RNG substreams are pure
// functions of (scenario, seed) and are simply re-derived on resume —
// none of that state is stored.
//
// Durability model: sidecars are written to <path>.tmp and renamed over
// the old sidecar, so a crash mid-checkpoint leaves the previous one
// intact.  The whole payload is CRC32C-guarded; a missing, torn, or
// corrupt sidecar reads as "no checkpoint" (the shard restarts from
// zero — always safe, never wrong).
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <vector>

#include "cdn/ats_server.h"
#include "engine/admission.h"
#include "engine/ground_truth.h"
#include "faults/fault_schedule.h"

namespace vstream::engine {

/// One shard's resumable state after its latest committed batch.
struct ShardCheckpoint {
  std::uint64_t fingerprint = 0;  ///< run_fingerprint() of the owning run
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 0;
  /// Sessions [0, next_index) of this shard's partition are committed.
  std::uint64_t next_index = 0;
  /// Spill file state at the cut (SpillWriter::flush_committed()).
  std::uint64_t spill_committed_bytes = 0;
  std::uint64_t spill_blocks_written = 0;
  /// Accounting accumulated over the committed batches.  injected_faults
  /// is not stored: the engine sets it once on the merged result.
  GroundTruth ground_truth;
  std::vector<cdn::ServerStats> server_stats;
};

/// Deterministic identity of a run for resume validation: hashes the
/// admitted schedule (id, rng seed, start time), the shard count, and the
/// fault schedule.  Any change to scenario, seed, shard count, or faults
/// changes the fingerprint.
std::uint64_t run_fingerprint(const std::vector<AdmittedSession>& admitted,
                              std::size_t shard_count,
                              const faults::FaultSchedule* faults);

/// Atomically replace the sidecar at `path` (tmp + rename).  Throws
/// sim::HostIoError on I/O failure (real or injected via the
/// checkpoint.write / checkpoint.rename failpoints); any torn tmp file
/// is removed and the previous sidecar at `path` is never touched, so
/// the runner's degradation policy (continue without checkpoints) keeps
/// a consistent resume point.
void write_checkpoint(const std::filesystem::path& path,
                      const ShardCheckpoint& checkpoint);

/// Read a sidecar.  Missing, torn, or corrupt files return nullopt — the
/// caller restarts that shard from zero.  A well-formed sidecar whose
/// fingerprint disagrees with the resuming run is NOT detected here;
/// compare ShardCheckpoint::fingerprint at the call site.
std::optional<ShardCheckpoint> read_checkpoint(
    const std::filesystem::path& path);

}  // namespace vstream::engine
