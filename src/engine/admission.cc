#include "engine/admission.h"

namespace vstream::engine {

std::vector<AdmittedSession> admit_sessions(
    const workload::Scenario& scenario, workload::SessionGenerator& generator,
    sim::Rng& master_rng) {
  std::vector<AdmittedSession> admitted;
  admitted.reserve(scenario.session_count);
  for (std::size_t i = 0; i < scenario.session_count; ++i) {
    AdmittedSession session;
    session.spec = generator.next(master_rng);
    session.rng_seed = master_rng.fork_seed();
    admitted.push_back(std::move(session));
  }
  return admitted;
}

}  // namespace vstream::engine
