// Worst-N attribution: which subsystem ruined the worst sessions?
//
// For each of the N worst-QoE sessions of a completed run, replay the
// session six times — factually (kNone, which must reproduce the original
// bit-exactly) and once per idealized subsystem — and fold the penalty
// deltas into blame fractions (analysis/attribution.h).  The replay
// matrix fans out across the work-stealing Executor; every replay writes
// into its own preallocated slot, so the report is deterministic for any
// thread count, like everything else in the engine.
#pragma once

#include <cstddef>

#include "analysis/attribution.h"
#include "engine/replay.h"

namespace vstream::engine {

struct AttributionOptions {
  /// How many worst sessions to attribute.
  std::size_t worst_n = 20;
  analysis::PenaltyWeights weights;
  /// Physical threads for the replay matrix; 0 resolves via
  /// runtime::resolve_thread_count (VSTREAM_THREADS, else hardware).
  std::size_t threads = 0;
};

/// Attribute the worst sessions of `baseline` (the materialized dataset
/// of the factual run whose world `ctx` rebuilt).  Sessions are ranked by
/// penalty over the proxy-unfiltered join; each selected session is
/// replayed per subsystem and the blame math applied.  The report's
/// sessions come back worst first.
analysis::AttributionReport attribute_worst(const ReplayContext& ctx,
                                            const telemetry::Dataset& baseline,
                                            AttributionOptions options = {});

}  // namespace vstream::engine
