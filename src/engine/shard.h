// Shard: one worker's complete replica delivery stack.
//
// Each shard owns a full copy of everything mutable a session touches —
// its own cdn::Fleet (cache-empty; content comes from the shared
// WarmArchive), its own sim::EventQueue, telemetry::Collector, GroundTruth,
// per-server ServerStats, and a replica faults::FaultInjector armed from
// the same FaultSchedule.  Shared inputs (scenario, catalog, warm archive,
// bad prefixes, admitted specs) are read-only while workers run, so the
// whole construction is free of data races by design.
#pragma once

#include <filesystem>
#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "cdn/fleet.h"
#include "engine/admission.h"
#include "engine/ground_truth.h"
#include "engine/run_context.h"
#include "engine/session_runtime.h"
#include "engine/warmup.h"
#include "faults/fault_injector.h"
#include "sim/event_queue.h"
#include "telemetry/collector.h"

namespace vstream::engine {

/// What one shard hands back for the canonical merge.
struct ShardResult {
  /// Empty when the shard ran against a record sink (spill mode): the
  /// records went to the sink as sessions completed instead of
  /// materializing here.
  telemetry::Dataset dataset;
  GroundTruth ground_truth;
  std::vector<cdn::ServerStats> server_stats;  // pop * servers_per_pop + server
  /// Spill mode: the file(s) this shard's sink wrote, in shard order
  /// after the merge.
  std::vector<std::filesystem::path> spill_files;
  /// False only when a checkpointed run was stopped early
  /// (CheckpointConfig::stop_after_batches): the spill files hold a
  /// committed prefix and a resume can finish the run.
  bool completed = true;
  /// True when a checkpoint sidecar write failed mid-run and the run
  /// degraded to checkpoint-free execution (results stay complete and
  /// correct; only crash-resumability is lost).  ORed across shards by
  /// the merge.
  bool checkpoints_degraded = false;
};

class Shard {
 public:
  /// All references must outlive the shard; none are modified.  `faults`
  /// may be null (no injection).  `sink` may be null (records materialize
  /// in the shard's dataset); when set it receives every record plus a
  /// session_complete() per finished session, and must outlive run().
  /// `ideal` may be null (factual run); when set, every session in the
  /// shard runs with that one subsystem idealized (counterfactual replay).
  Shard(const workload::Scenario& scenario,
        const workload::VideoCatalog& catalog, const WarmArchive& warm,
        const faults::FaultSchedule* faults,
        const std::unordered_set<net::Prefix24>* bad_prefixes,
        telemetry::RecordSink* sink = nullptr,
        const cdn::IdealizationPolicy* ideal = nullptr);

  /// Run this shard's session partition through the event queue and return
  /// the shard-local telemetry and accounting.  Call once.
  ShardResult run(std::span<const AdmittedSession> sessions);

 private:
  void step_event(SessionRuntime* runtime);

  const workload::Scenario& scenario_;
  cdn::Fleet fleet_;
  sim::EventQueue queue_;
  telemetry::Collector collector_;
  GroundTruth ground_truth_;
  std::vector<cdn::ServerStats> server_stats_;
  std::unique_ptr<faults::FaultInjector> injector_;
  /// Shared per-round sample buffer for this shard's sessions (sessions
  /// step sequentially on the shard's event loop).
  std::vector<net::RoundSample> round_scratch_;
  RunContext ctx_;
};

}  // namespace vstream::engine
