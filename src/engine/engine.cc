#include "engine/engine.h"

#include <filesystem>
#include <stdexcept>

#include "engine/admission.h"
#include "engine/checkpoint.h"
#include "engine/sharded_runner.h"
#include "engine/warmup.h"
#include "runtime/executor.h"
#include "sim/env_util.h"
#include "workload/population.h"
#include "workload/session_generator.h"

namespace vstream::engine {

std::size_t positive_env(const char* name, std::size_t fallback) {
  return sim::positive_env(name, fallback);
}

double positive_env_double(const char* name, double fallback) {
  return sim::positive_env_double(name, fallback);
}

cdn::OverloadConfig resolve_overload_env(cdn::OverloadConfig base) {
  base.breaker_latency_threshold_ms = positive_env_double(
      "VSTREAM_BREAKER_THRESHOLD", base.breaker_latency_threshold_ms);
  // Percent in the environment (10 = 10% of requests may be retries),
  // ratio internally.
  base.retry_budget_ratio =
      positive_env_double("VSTREAM_RETRY_BUDGET",
                          base.retry_budget_ratio * 100.0) /
      100.0;
  // Percent of nominal capacity (125 = shed past 1.25x).
  base.shed_watermark = positive_env_double("VSTREAM_SHED_WATERMARK",
                                            base.shed_watermark * 100.0) /
                        100.0;
  return base;
}

std::size_t resolve_shard_count(std::size_t requested) {
  if (requested != 0) return requested;
  return positive_env("VSTREAM_SHARDS", runtime::kDefaultLogicalShards);
}

RunResult run_simulation(const workload::Scenario& scenario,
                         RunOptions options) {
  RunResult result;
  result.scenario = scenario;
  result.shard_count = resolve_shard_count(options.shards);
  result.thread_count = runtime::resolve_thread_count(options.threads);
  // Overload-protection knobs apply before the world is built, so every
  // server (and the warm archive prototype) sees the same config.
  result.scenario.fleet.server.overload =
      resolve_overload_env(result.scenario.fleet.server.overload);

  // World construction mirrors core::Pipeline exactly (same master-RNG
  // consumption order), so the engine and the facade agree on the world.
  // Built from result.scenario so the resolved overload knobs reach every
  // server replica.
  const workload::Scenario& world = result.scenario;
  sim::Rng rng(world.seed);
  auto catalog = std::make_shared<workload::VideoCatalog>(world.catalog, rng);
  workload::Population population(world.population, rng);
  workload::SessionGenerator generator(world.sessions, *catalog, population);
  const cdn::Fleet prototype(world.fleet, catalog->size());

  const WarmArchive warm =
      options.warm_caches
          ? build_warm_archive(prototype, *catalog, options.disk_fill,
                               options.universal_head)
          : WarmArchive(world.fleet);

  const std::vector<AdmittedSession> admitted =
      admit_sessions(world, generator, rng);

  // Streaming telemetry: an explicit option wins, else the strict
  // environment knob (unset: in-memory; set but empty: refuse to run).
  std::string spill_dir =
      !options.telemetry_spill_dir.empty()
          ? options.telemetry_spill_dir
          : sim::nonempty_env("VSTREAM_TELEMETRY_SPILL");

  // Crash safety: same precedence.  Checkpointing implies spill mode
  // (record durability lives in the spill files); with no spill dir
  // configured the checkpoint directory carries both.
  const std::string ckpt_dir = !options.checkpoint_dir.empty()
                                   ? options.checkpoint_dir
                                   : sim::nonempty_env("VSTREAM_CHECKPOINT");
  if (options.resume && ckpt_dir.empty()) {
    throw std::runtime_error(
        "run_simulation: resume requested without a checkpoint directory "
        "(RunOptions.checkpoint_dir / VSTREAM_CHECKPOINT)");
  }
  if (!ckpt_dir.empty() && spill_dir.empty()) spill_dir = ckpt_dir;

  std::filesystem::path spill_path;
  if (!spill_dir.empty()) {
    spill_path = spill_dir;
    std::filesystem::create_directories(spill_path);
  }

  CheckpointConfig checkpoint;
  if (!ckpt_dir.empty()) {
    checkpoint.dir = ckpt_dir;
    std::filesystem::create_directories(checkpoint.dir);
    checkpoint.resume = options.resume;
    checkpoint.interval =
        options.checkpoint_interval != 0
            ? options.checkpoint_interval
            : positive_env("VSTREAM_CHECKPOINT_INTERVAL", 1000);
    checkpoint.fingerprint =
        run_fingerprint(admitted, result.shard_count,
                        options.faults.empty() ? nullptr : &options.faults);
    checkpoint.stop_after_batches = options.stop_after_checkpoints;
  }

  ExecOptions exec;
  exec.threads = result.thread_count;
  exec.spill_format = options.spill_format;
  ShardResult merged = run_sharded(
      world, *catalog, warm,
      options.faults.empty() ? nullptr : &options.faults,
      options.bad_prefixes.empty() ? nullptr : &options.bad_prefixes,
      admitted, result.shard_count,
      spill_dir.empty() ? nullptr : &spill_path,
      ckpt_dir.empty() ? nullptr : &checkpoint, &exec);
  result.completed = merged.completed;
  result.checkpoints_degraded = merged.checkpoints_degraded;

  for (std::filesystem::path& file : merged.spill_files) {
    result.spill.add_file(std::move(file));
  }
  result.catalog = std::move(catalog);
  result.dataset = std::move(merged.dataset);
  result.ground_truth = std::move(merged.ground_truth);
  result.ground_truth.injected_faults = options.faults.events();
  result.server_stats = std::move(merged.server_stats);
  return result;
}

AnalyzedRun run_and_analyze(const workload::Scenario& scenario,
                            RunOptions options) {
  AnalyzedRun analyzed;
  analyzed.run = run_simulation(scenario, std::move(options));
  if (analyzed.run.spilled()) {
    // The batch join holds pointers into a materialized dataset, which a
    // spilled run deliberately does not have.  Spilled runs analyze
    // incrementally instead (core::analyze_spill).
    throw std::runtime_error(
        "run_and_analyze: telemetry was spilled to disk "
        "(VSTREAM_TELEMETRY_SPILL / RunOptions.telemetry_spill_dir); "
        "use core::analyze_spill on RunResult.spill instead");
  }
  analyzed.proxies = telemetry::detect_proxies(analyzed.run.dataset);
  analyzed.joined = telemetry::JoinedDataset::build(analyzed.run.dataset,
                                                    &analyzed.proxies);
  return analyzed;
}

}  // namespace vstream::engine
