#include "engine/shard.h"

namespace vstream::engine {

Shard::Shard(const workload::Scenario& scenario,
             const workload::VideoCatalog& catalog, const WarmArchive& warm,
             const faults::FaultSchedule* faults,
             const std::unordered_set<net::Prefix24>* bad_prefixes,
             telemetry::RecordSink* sink,
             const cdn::IdealizationPolicy* ideal)
    : scenario_(scenario),
      fleet_(scenario.fleet, catalog.size()),
      collector_(scenario.tcp_sample_interval_ms, sink),
      server_stats_(static_cast<std::size_t>(fleet_.pop_count()) *
                    fleet_.servers_per_pop()) {
  ctx_.scenario = &scenario_;
  ctx_.catalog = &catalog;
  ctx_.fleet = &fleet_;
  ctx_.collector = &collector_;
  ctx_.ground_truth = &ground_truth_;
  ctx_.bad_prefixes = bad_prefixes;
  ctx_.idealization = ideal;
  ctx_.warm_archive = &warm;
  ctx_.server_stats = &server_stats_;
  ctx_.round_scratch = &round_scratch_;
  if (faults != nullptr && !faults->empty()) {
    injector_ =
        std::make_unique<faults::FaultInjector>(fleet_, queue_, *faults);
    ctx_.injector = injector_.get();
  }
}

void Shard::step_event(SessionRuntime* runtime) {
  const sim::Ms wall_ms = runtime->step(queue_.now());
  if (runtime->has_more()) {
    queue_.schedule_in(wall_ms, [this, runtime] { step_event(runtime); });
  } else {
    runtime->finish();
    // Sessions complete atomically on their shard: finish() emitted the
    // last record, so a spilling sink can serialize and free the session
    // right here, and the sampling clock is retired either way.
    collector_.session_complete(runtime->session_id());
  }
}

ShardResult Shard::run(std::span<const AdmittedSession> sessions) {
  // Arm faults FIRST: at equal timestamps the queue is FIFO, so fault
  // epochs flip the fleet before any same-instant chunk request fires —
  // the same relative order on every shard, for every shard count.
  if (injector_ != nullptr) injector_->arm();

  // Pre-size the telemetry streams: the admitted specs bound the record
  // counts, so steady-state recording appends without reallocating.
  std::size_t expected_chunks = 0;
  for (const AdmittedSession& session : sessions) {
    expected_chunks += session.spec.chunk_count;
  }
  collector_.reserve(sessions.size(), expected_chunks);

  // Materialize the runtimes, then let the event queue interleave the
  // sessions: every chunk request fires in true timestamp order.  Routing
  // happens at construction, before any fault epoch has been applied, so
  // the initial assignment is independent of the partition.
  std::vector<std::unique_ptr<SessionRuntime>> runtimes;
  runtimes.reserve(sessions.size());
  for (const AdmittedSession& session : sessions) {
    runtimes.push_back(std::make_unique<SessionRuntime>(
        ctx_, session.spec, sim::Rng(session.rng_seed), nullptr));
    SessionRuntime* runtime = runtimes.back().get();
    queue_.schedule_at(session.spec.start_time_ms,
                       [this, runtime] { step_event(runtime); });
  }
  queue_.run_all();

  ShardResult result;
  result.dataset = collector_.take();
  result.ground_truth = std::move(ground_truth_);
  result.server_stats = std::move(server_stats_);
  return result;
}

}  // namespace vstream::engine
