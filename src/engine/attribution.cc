#include "engine/attribution.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "runtime/executor.h"
#include "telemetry/join.h"

namespace vstream::engine {

namespace {

/// The CSV export rounds doubles to 6 significant digits, so a baseline
/// that went through `--out` + re-import carries ~1e-6 relative noise the
/// replay (which is exact) will not have.  Allow exactly that much slack;
/// a replay of the wrong world diverges by whole milliseconds/kbps.
bool close_enough(double a, double b) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= 1e-5 * scale;
}

/// The factual replay must reproduce the measured QoE (bit-exactly for an
/// in-memory baseline, to within export rounding for a re-imported one);
/// any further drift means the replay world is not the measured world.
bool same_qoe(const analysis::SessionQoe& a, const analysis::SessionQoe& b) {
  return close_enough(a.startup_ms, b.startup_ms) &&
         close_enough(a.rebuffer_rate_pct, b.rebuffer_rate_pct) &&
         a.rebuffer_events == b.rebuffer_events &&
         close_enough(a.avg_bitrate_kbps, b.avg_bitrate_kbps) &&
         a.chunks == b.chunks;
}

}  // namespace

analysis::AttributionReport attribute_worst(const ReplayContext& ctx,
                                            const telemetry::Dataset& baseline,
                                            AttributionOptions options) {
  // Rank by penalty over the proxy-unfiltered join: attribution explains
  // the worst *sessions*, whether or not a proxy sat in front of them.
  const telemetry::JoinedDataset joined =
      telemetry::JoinedDataset::build(baseline);
  std::vector<analysis::SessionQoe> qoes;
  qoes.reserve(joined.sessions().size());
  for (const telemetry::JoinedSession& session : joined.sessions()) {
    qoes.push_back(analysis::session_qoe(session));
  }
  const std::vector<std::size_t> worst =
      analysis::worst_sessions(qoes, options.worst_n, options.weights);

  analysis::AttributionReport report;
  report.sessions_analyzed = joined.sessions().size();
  report.weights = options.weights;
  if (worst.empty()) return report;

  // The replay matrix: per worst session, one factual replay (column 0)
  // plus one per idealized subsystem.  Flat task indexing into
  // preallocated slots keeps the fan-out deterministic for any pool size.
  constexpr std::size_t kColumns = 1 + cdn::kIdealizedSubsystemCount;
  const std::size_t tasks = worst.size() * kColumns;
  std::vector<analysis::SessionQoe> replayed(tasks);
  std::vector<bool> found(tasks, false);

  runtime::Executor executor(runtime::resolve_thread_count(options.threads));
  executor.parallel_for(
      tasks,
      [&](std::size_t task) {
        const std::size_t row = task / kColumns;
        const std::size_t column = task % kColumns;
        cdn::IdealizationPolicy policy;
        if (column != 0) {
          policy.target = cdn::kIdealizedSubsystems[column - 1];
        }
        const std::uint64_t id =
            joined.sessions()[worst[row]].session_id;
        if (const auto result = ctx.replay_session(id, policy)) {
          replayed[task] = result->qoe;
          found[task] = true;
        }
      },
      nullptr, "replay");

  report.sessions.reserve(worst.size());
  for (std::size_t row = 0; row < worst.size(); ++row) {
    const std::size_t base_task = row * kColumns;
    const std::uint64_t id = joined.sessions()[worst[row]].session_id;
    const double baseline_penalty =
        analysis::qoe_penalty(replayed[base_task], options.weights);
    double ideal_penalty[cdn::kIdealizedSubsystemCount];
    for (std::size_t i = 0; i < cdn::kIdealizedSubsystemCount; ++i) {
      ideal_penalty[i] = analysis::qoe_penalty(replayed[base_task + 1 + i],
                                               options.weights);
    }
    analysis::SessionAttribution attribution =
        analysis::attribute_session(id, baseline_penalty, ideal_penalty);
    attribution.baseline_matches =
        found[base_task] &&
        same_qoe(replayed[base_task], qoes[worst[row]]);
    report.sessions.push_back(attribution);
  }
  return report;
}

}  // namespace vstream::engine
