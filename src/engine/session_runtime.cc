#include "engine/session_runtime.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "net/geo.h"

namespace vstream::engine {

namespace {

std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// Stable proxy egress IP for an organization (198.18.0.0/15 is reserved
/// for benchmarking — a tidy home for synthetic middleboxes).
net::IpV4 org_proxy_ip(const std::string& org) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : org) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  h = mix64(h);
  return net::make_ip(198, 18, static_cast<std::uint8_t>(h >> 8),
                      static_cast<std::uint8_t>(h));
}

/// A couple of mega-proxy egress points (cloud security products) that
/// funnel many organizations; they trip the paper's volume rule (§3-ii).
net::IpV4 mega_proxy_ip(std::uint64_t token) {
  return net::make_ip(198, 19, 0, token % 2 == 0 ? 10 : 20);
}

}  // namespace

bool SessionRuntime::resolve_gpu(const SessionOverrides* overrides) const {
  return overrides != nullptr && overrides->gpu ? *overrides->gpu
                                                : spec_.client.gpu;
}

double SessionRuntime::resolve_cpu_load(
    const SessionOverrides* overrides) const {
  return overrides != nullptr && overrides->cpu_load ? *overrides->cpu_load
                                                     : spec_.client.cpu_load;
}

SessionRuntime::SessionRuntime(RunContext& ctx, workload::SessionSpec spec,
                               sim::Rng rng, const SessionOverrides* overrides)
    : ctx_(ctx),
      spec_(std::move(spec)),
      rng_(std::move(rng)),
      ref_(ctx.fleet->route(spec_.client.prefix->location, spec_.video_id,
                            spec_.video_rank, spec_.session_id,
                            ctx.scenario->routing, spec_.start_time_ms)),
      distance_km_(net::haversine_km(spec_.client.prefix->location,
                                     ctx.fleet->pop_city(ref_.pop).location)),
      stack_(overrides != nullptr && overrides->ds_profile
                 ? client::DownloadStack(*overrides->ds_profile)
                 : client::DownloadStack(spec_.client.ua)),
      rendering_(client::RenderConfig{resolve_gpu(overrides),
                                      resolve_cpu_load(overrides),
                                      spec_.client.visible},
                 spec_.client.ua),
      buffer_(ctx.scenario->buffer) {
  if (overrides != nullptr) overrides_ = *overrides;

  const workload::ClientProfile& client = spec_.client;
  bottleneck_kbps_ = overrides_ && overrides_->bottleneck_kbps
                         ? *overrides_->bottleneck_kbps
                         : client.prefix->bandwidth_kbps;
  // Peak-hour congestion epoch: persistent extra latency this session
  // (survives a failover — the congestion sits on the access path).
  if (client.prefix->congestion_prone &&
      rng_.bernoulli(ctx_.scenario->congestion_epoch_probability)) {
    congestion_offset_ms_ =
        rng_.lognormal_median(ctx_.scenario->congestion_offset_median_ms,
                              ctx_.scenario->congestion_offset_sigma);
  }
  tcp_config_ = ctx_.scenario->tcp;
  if (ctx_.scenario->rwnd_median_segments > 0.0) {
    // Per-session receive-buffer autotuning outcome (flow-control cap).
    tcp_config_.receiver_window_segments = static_cast<std::uint32_t>(
        std::clamp(rng_.lognormal_median(ctx_.scenario->rwnd_median_segments,
                                         ctx_.scenario->rwnd_sigma),
                   64.0, 4096.0));
  }
  rebuild_connection();

  const client::AbrKind abr_kind =
      overrides_ && overrides_->abr ? *overrides_->abr : ctx_.scenario->abr;
  const std::uint32_t fixed_rate = overrides_ && overrides_->fixed_bitrate_kbps
                                       ? *overrides_->fixed_bitrate_kbps
                                       : 0;
  abr_ = client::make_abr(abr_kind, fixed_rate);
}

void SessionRuntime::rebuild_connection() {
  const workload::ClientProfile& client = spec_.client;
  distance_km_ = net::haversine_km(client.prefix->location,
                                   ctx_.fleet->pop_city(ref_.pop).location);
  net::PathConfig path = net::make_path_config(client.prefix->access,
                                               distance_km_, bottleneck_kbps_);
  // Chronically lossy last miles reach percent-level loss, capped so the
  // transport model stays in a sane regime.
  path.random_loss =
      std::min(0.02, path.random_loss * client.prefix->loss_multiplier);
  path.base_rtt_ms += congestion_offset_ms_;
  if (ctx_.idealization != nullptr && ctx_.idealization->lossless_network()) {
    // Counterfactual lossless path: no random loss and no peak-hour
    // congestion penalty.  The bottleneck rate and propagation RTT stay —
    // physics is not a subsystem we can fix.
    path.random_loss = 0.0;
    path.base_rtt_ms -= congestion_offset_ms_;
  }
  current_loss_ = path.random_loss;
  conn_ = std::make_unique<net::TcpConnection>(tcp_config_, path, rng_.fork());
}

cdn::ServeResult SessionRuntime::serve_chunk(const cdn::ChunkKey& key,
                                             std::uint64_t bytes, sim::Ms now,
                                             const cdn::ServeOptions& opts) {
  cdn::AtsServer& server = ctx_.fleet->server(ref_);
  if (ctx_.warm_archive == nullptr) {
    return server.serve(key, bytes, now, rng_, opts, ctx_.idealization);
  }
  const std::uint32_t linear =
      ref_.pop * ctx_.fleet->servers_per_pop() + ref_.server;
  return server.serve_isolated(key, bytes, now, rng_,
                               ctx_.warm_archive->for_server(ref_.server),
                               server_states_[linear],
                               (*ctx_.server_stats)[linear], opts,
                               ctx_.idealization);
}

sim::Ms SessionRuntime::step(sim::Ms fleet_now) {
  const std::uint32_t c = next_chunk_++;
  const double tau = ctx_.catalog->chunk_duration_s();
  const workload::VideoMeta& meta = ctx_.catalog->video(spec_.video_id);
  const workload::ClientProfile& client = spec_.client;
  const auto ladder = client::default_bitrate_ladder();

  sim::Ms manifest_ms = 0.0;
  if (c == 0) {
    // The session starts with the manifest request over the same TCP
    // connection (§2 model).  Manifests are small and served from memory;
    // the cost is one round trip plus a tiny service time, and it also
    // warms the connection's first congestion-window round.
    const net::TransferResult manifest = conn_->transfer(2'048);
    manifest_ms =
        manifest.duration_ms + rng_.lognormal_median(1.0, 0.5) /*service*/;
    buffer_.advance(manifest_ms);  // wall clock; nothing playable yet
    session_clock_ms_ += manifest_ms;
  }

  // ---- ABR decision ----
  client::AbrContext ctx;
  ctx.chunk_index = c;
  ctx.buffer_s = buffer_.level_s();
  ctx.max_buffer_s = ctx_.scenario->buffer.max_buffer_s;
  ctx.last_throughput_kbps = last_tp_kbps_;
  ctx.smoothed_throughput_kbps = smoothed_tp_kbps_;
  ctx.last_bitrate_kbps = last_bitrate_;
  ctx.known_bad_prefix = ctx_.bad_prefixes != nullptr &&
                         ctx_.bad_prefixes->contains(client.prefix->prefix);
  // Oracle-ABR counterfactual: pick the highest rung sustainable at the
  // session's true bottleneck rate (with delivery headroom), which the
  // simulator knows exactly and a production ABR can only estimate from
  // noisy throughput samples.  abr_->choose draws no RNG, so substituting
  // the decision leaves every downstream draw aligned with the baseline.
  std::uint32_t bitrate;
  if (ctx_.idealization != nullptr && ctx_.idealization->oracle_abr()) {
    bitrate = ladder.front();
    for (const std::uint32_t rung : ladder) {
      if (rung <= 0.85 * bottleneck_kbps_) bitrate = rung;
    }
  } else {
    bitrate = abr_->choose(ctx, ladder);
  }
  last_bitrate_ = bitrate;

  // Last chunk may carry less than tau seconds (§3).
  double this_tau = tau;
  if (c == meta.chunk_count - 1) {
    const double leftover = meta.duration_s - tau * (meta.chunk_count - 1);
    this_tau = std::clamp(leftover, 1.0, tau);
  }
  const std::uint64_t bytes =
      cdn::chunk_bytes_vbr(bitrate, this_tau, spec_.video_id, c);

  // ---- server: issue the request through the recovery machinery ----
  // A failed attempt (dead server, backend error, first byte past the
  // request timeout) costs its share of wall time, then capped exponential
  // backoff; after failover_after_attempts consecutive failures on one
  // server (immediately when it is down) the player fails over to the next
  // live server — cross-PoP when the whole PoP is dark — over a fresh TCP
  // connection.
  const workload::RecoveryPolicy& policy = ctx_.scenario->recovery;
  const cdn::ChunkKey key{spec_.video_id, c, bitrate};
  // Request priority for the server's load shedder: first chunks anchor
  // startup delay and are never shed; a thin client buffer (< 2 chunks)
  // marks a near-stall request; everything else is steady mid-session work.
  cdn::ServeOptions serve_opts;
  serve_opts.priority = c == 0 ? cdn::RequestPriority::kFirstChunk
                        : buffer_.level_s() < 2.0 * tau
                            ? cdn::RequestPriority::kLowBuffer
                            : cdn::RequestPriority::kSteady;
  cdn::ServeResult serve;
  sim::Ms recovery_ms = 0.0;
  std::uint32_t retries = 0;
  std::uint32_t timeouts = 0;
  std::uint32_t attempts_on_server = 0;
  bool failed_over = false;
  bool delivered = false;
  bool any_shed = false;
  bool any_budget_denied = false;
  for (std::uint32_t attempt = 0; attempt <= policy.max_retries; ++attempt) {
    const bool server_dead = ctx_.fleet->is_down(ref_);
    if (server_dead) {
      // Dead servers do not answer; the player waits out the full timeout.
      recovery_ms += policy.request_timeout_ms;
      ++timeouts;
      ++ctx_.ground_truth->request_timeouts;
    } else {
      serve_opts.retry = attempt > 0;
      serve = serve_chunk(key, bytes, fleet_now + recovery_ms, serve_opts);
      any_shed |= serve.shed;
      any_budget_denied |= serve.budget_denied;
      if (serve.failed) {
        // Fast local error (cache miss while the backend is unreachable).
        recovery_ms += serve.total_ms();
      } else if (serve.total_ms() > policy.request_timeout_ms) {
        // Alive but too slow (degraded disk, melted backend): the player
        // abandons the attempt at the timeout.
        recovery_ms += policy.request_timeout_ms;
        ++timeouts;
        ++ctx_.ground_truth->request_timeouts;
      } else {
        delivered = true;
        break;
      }
    }
    ++attempts_on_server;
    if (attempt == policy.max_retries) break;  // out of attempts
    const sim::Ms backoff = std::min(
        policy.backoff_cap_ms,
        policy.backoff_base_ms *
            std::pow(policy.backoff_factor, static_cast<double>(attempt)));
    recovery_ms += backoff * rng_.uniform(0.5, 1.0);  // jittered
    ++retries;
    ++ctx_.ground_truth->chunk_retries;
    if (server_dead || attempts_on_server >= policy.failover_after_attempts) {
      const cdn::ServerRef next = ctx_.fleet->failover(
          ref_, client.prefix->location, spec_.video_id,
          fleet_now + recovery_ms);
      if (next.pop != ref_.pop || next.server != ref_.server) {
        ref_ = next;
        failed_over = true;
        attempts_on_server = 0;
        ++ctx_.ground_truth->failover_events;
        rebuild_connection();
      }
    }
  }

  if (!delivered) {
    // Recovery exhausted (e.g. the whole fleet is dark): the player surfaces
    // a fatal error and the session ends early, but always *terminates*.
    spec_.chunk_count = c;  // chunks 0..c-1 were delivered
    completed_ = false;
    ++ctx_.ground_truth->failed_sessions;
    buffer_.advance(recovery_ms);  // the viewer stared at a spinner
    session_clock_ms_ += recovery_ms;
    return manifest_ms + recovery_ms;
  }

  // ---- network transfer ----
  // The connection sits idle while the player backs off and the server
  // works on the request; the bottleneck queue drains meanwhile (and a gap
  // longer than the RTO triggers window validation).
  conn_->idle(recovery_ms + serve.total_ms());
  if (overrides_ && c < overrides_->per_chunk_loss.size() &&
      overrides_->per_chunk_loss[c]) {
    current_loss_ = *overrides_->per_chunk_loss[c];
  }
  {
    // Injected loss bursts ride on top of the path's base loss while
    // active; the path reverts on its own once the burst epoch ends.
    // A lossless-network counterfactual suppresses both.
    double loss = current_loss_;
    if (ctx_.injector != nullptr) {
      loss = std::min(0.25, loss + ctx_.injector->extra_client_loss(fleet_now));
    }
    if (ctx_.idealization != nullptr &&
        ctx_.idealization->lossless_network()) {
      loss = 0.0;
    }
    conn_->mutable_path().set_random_loss(loss);
  }
  std::vector<net::RoundSample> local_rounds;
  std::vector<net::RoundSample>& rounds =
      ctx_.round_scratch != nullptr ? *ctx_.round_scratch : local_rounds;
  rounds.clear();
  const net::TransferResult transfer = conn_->transfer(bytes, &rounds);

  // ---- download stack ----
  client::DownloadStackSample ds = stack_.sample(c, rng_);
  if (overrides_ && overrides_->disable_ds_anomalies &&
      *overrides_->disable_ds_anomalies) {
    ds.buffered_anomaly = false;
  }

  double dfb_ms = 0.0;
  double dlb_ms = 0.0;
  if (ds.buffered_anomaly) {
    // The stack held the whole chunk: the player's first byte arrives only
    // after the full network transfer plus the hold; the bytes then land
    // essentially at once (§4.3-1, Fig. 17).
    dfb_ms = recovery_ms + serve.total_ms() + ds.ds_ms + transfer.duration_ms +
             ds.hold_ms;
    dlb_ms = rng_.uniform(1.0, 8.0);
    ctx_.ground_truth->ds_anomalies[spec_.session_id].push_back(c);
    ++ctx_.ground_truth->total_ds_anomalies;
  } else {
    dfb_ms = recovery_ms + serve.total_ms() + ds.ds_ms + transfer.first_byte_ms;
    dlb_ms = transfer.duration_ms - transfer.first_byte_ms;
  }
  ++ctx_.ground_truth->total_chunks;

  // ---- playout ----
  const client::DrainResult drain = buffer_.advance(dfb_ms + dlb_ms);
  buffer_.add_chunk(this_tau);

  // QoE-sensitive engagement: stalls drive viewers away ([25]).
  if (drain.stall_events > 0 &&
      rng_.bernoulli(ctx_.scenario->stall_abandonment_probability)) {
    spec_.chunk_count = c + 1;  // this chunk is the viewer's last
    ++ctx_.ground_truth->stall_abandonments;
  }

  // ---- rendering ----
  const double download_rate = sim::seconds(this_tau) / (dfb_ms + dlb_ms);
  const client::RenderResult rendered = rendering_.render_chunk(
      this_tau, bitrate, download_rate, buffer_.level_s(), rng_);

  // ---- telemetry: player side ----
  telemetry::PlayerChunkRecord player_rec;
  player_rec.session_id = spec_.session_id;
  player_rec.chunk_id = c;
  player_rec.request_sent_ms = session_clock_ms_;
  player_rec.dfb_ms = dfb_ms;
  player_rec.dlb_ms = dlb_ms;
  player_rec.bitrate_kbps = bitrate;
  player_rec.rebuffer_ms = drain.stalled_ms;
  player_rec.rebuffer_count = drain.stall_events;
  player_rec.visible = client.visible;
  player_rec.avg_fps = rendered.avg_fps;
  player_rec.dropped_frames = rendered.dropped_frames;
  player_rec.total_frames = rendered.total_frames;
  player_rec.retries = retries;
  player_rec.timeouts = timeouts;
  player_rec.failed_over = failed_over;
  player_rec.recovery_ms = recovery_ms;
  ctx_.collector->record(player_rec);

  // ---- telemetry: CDN side ----
  telemetry::CdnChunkRecord cdn_rec;
  cdn_rec.session_id = spec_.session_id;
  cdn_rec.chunk_id = c;
  cdn_rec.dwait_ms = serve.dwait_ms;
  cdn_rec.dopen_ms = serve.dopen_ms;
  cdn_rec.dread_ms = serve.dread_ms;
  cdn_rec.dbe_ms = serve.dbe_ms;
  cdn_rec.cache_level = serve.level;
  cdn_rec.chunk_bytes = bytes;
  cdn_rec.pop = ref_.pop;
  cdn_rec.server = ref_.server;
  cdn_rec.served_stale = serve.stale;
  // Overload-protection telemetry: shed/budget denials are sticky across
  // the chunk's failed attempts (the delivered serve itself succeeded);
  // hedge/SWR/breaker describe the delivering serve.
  cdn_rec.shed = any_shed;
  cdn_rec.budget_denied = any_budget_denied;
  cdn_rec.hedged = serve.hedged;
  cdn_rec.hedge_won = serve.hedge_won;
  cdn_rec.served_swr = serve.swr;
  cdn_rec.breaker = serve.breaker;
  ctx_.collector->record(cdn_rec);

  // tcp_info sampling: the transfer starts once the server begins writing
  // (after recovery and its internal latency).
  ctx_.collector->sample_transfer(
      spec_.session_id, c, session_clock_ms_ + recovery_ms + serve.total_ms(),
      rounds);

  // ---- client-observed throughput feeds the ABR (§4.3-1's trap:
  // stack-buffered chunks inflate this estimate) ----
  last_tp_kbps_ =
      dlb_ms > 0.0 ? static_cast<double>(bytes) * 8.0 / dlb_ms : 0.0;
  // Outlier screen (§4.3-1 recommendation 2): against the running EWMA once
  // one exists, else against an absolute sanity cap (a 2015 client
  // reporting >50 Mbps instantaneous delivery is stack buffering, not
  // network speed).
  const bool outlier =
      ctx_.scenario->abr_filters_throughput_outliers &&
      (smoothed_tp_kbps_ > 0.0 ? last_tp_kbps_ > 4.0 * smoothed_tp_kbps_
                               : last_tp_kbps_ > 50'000.0);
  if (!outlier) {
    smoothed_tp_kbps_ = smoothed_tp_kbps_ == 0.0
                            ? last_tp_kbps_
                            : 0.7 * smoothed_tp_kbps_ + 0.3 * last_tp_kbps_;
  }

  sim::Ms wall_ms = manifest_ms + dfb_ms + dlb_ms;
  session_clock_ms_ += dfb_ms + dlb_ms;

  // ---- inter-chunk pacing: respect the buffer ceiling ----
  if (has_more()) {
    const double headroom = buffer_.headroom_s();
    if (headroom < tau) {
      const double wait_ms = sim::seconds(tau - headroom);
      buffer_.advance(wait_ms);  // buffer is deep; this never stalls
      conn_->idle(wait_ms);
      session_clock_ms_ += wait_ms;
      wall_ms += wait_ms;
    }
  }
  return wall_ms;
}

void SessionRuntime::finish() {
  const workload::ClientProfile& client = spec_.client;
  const workload::VideoMeta& meta = ctx_.catalog->video(spec_.video_id);

  telemetry::PlayerSessionRecord player_session;
  player_session.session_id = spec_.session_id;
  player_session.client_ip = client.ip;
  player_session.user_agent = client::user_agent_string(client.ua);
  player_session.video_duration_s = meta.duration_s;
  player_session.start_time_ms = spec_.start_time_ms;
  // Very short videos can end below the startup threshold; the player then
  // starts as soon as the stream completes.
  player_session.startup_ms =
      buffer_.started() ? buffer_.startup_ms() : session_clock_ms_;
  player_session.chunks_requested = spec_.chunk_count;
  player_session.completed = completed_;

  telemetry::CdnSessionRecord cdn_session;
  cdn_session.session_id = spec_.session_id;
  cdn_session.observed_ip = client.ip;
  cdn_session.observed_user_agent = player_session.user_agent;
  cdn_session.pop = ref_.pop;
  cdn_session.server = ref_.server;
  cdn_session.org = client.prefix->org;
  cdn_session.access = client.prefix->access;
  cdn_session.city = client.prefix->city;
  cdn_session.country = client.prefix->country;
  cdn_session.client_distance_km = distance_km_;

  if (client.behind_proxy) {
    ctx_.ground_truth->proxied[spec_.session_id] = true;
    if (rng_.bernoulli(0.5)) {
      // Explicit org proxy: the CDN sees the proxy's egress IP while the
      // beacon reports the browser's own address -> IP-mismatch rule.
      cdn_session.observed_ip = org_proxy_ip(client.prefix->org);
    } else {
      // Transparent mega-proxy/NAT: both sides see the same shared egress
      // IP, so only the volume rule can catch it.
      const net::IpV4 shared = mega_proxy_ip(spec_.session_id);
      cdn_session.observed_ip = shared;
      player_session.client_ip = shared;
    }
  }

  ctx_.collector->record(player_session);
  ctx_.collector->record(cdn_session);
}

}  // namespace vstream::engine
