// Cache warm-up: the steady state of edge servers that have been running
// for weeks, reproduced deterministically.
//
// Two consumers share one membership computation:
//
//   * warm_fleet() pre-loads a live fleet's caches in place (the legacy
//     coupled mode behind core::Pipeline::warm_caches), and
//   * build_warm_archive() materializes the same content once as an
//     immutable archive the sharded engine's workers read concurrently.
//
// Warm content is identical for every PoP — membership depends only on the
// within-PoP server index a video maps to — so the archive keeps one cache
// per server index instead of one per server, and per-shard fleet replicas
// carry no cache content at all.
#pragma once

#include <cstdint>
#include <vector>

#include "cdn/cache.h"
#include "cdn/fleet.h"
#include "workload/catalog.h"

namespace vstream::engine {

/// Immutable warmed cache content shared read-only across shards.
class WarmArchive {
 public:
  /// Empty archive (all probes miss) shaped for `servers_per_pop` indices.
  WarmArchive(const cdn::FleetConfig& config);

  const cdn::TwoLevelCache& for_server(std::uint32_t server_index) const {
    return caches_[server_index];
  }
  cdn::TwoLevelCache& mutable_for_server(std::uint32_t server_index) {
    return caches_[server_index];
  }
  std::uint32_t server_count() const {
    return static_cast<std::uint32_t>(caches_.size());
  }

 private:
  std::vector<cdn::TwoLevelCache> caches_;  // indexed by within-PoP index
};

/// Pre-populate a live fleet's caches in popularity order (see
/// core::Pipeline::warm_caches for the tiering rationale).
void warm_fleet(cdn::Fleet& fleet, const workload::VideoCatalog& catalog,
                double disk_fill, bool universal_head);

/// How build_warm_archive fills the archive.  kAuto picks the LRU
/// resident-set shortcut when the policy allows it; kWriteThrough always
/// replays every admission through the two-level hierarchy (the reference
/// behaviour the shortcut must reproduce — kept selectable for tests).
enum class WarmBuildMode { kAuto, kWriteThrough };

/// Build the shared read-only archive with exactly the content warm_fleet
/// would load into each server.  `prototype` supplies the fleet geometry,
/// server configuration and the video->server mapping; it is not modified.
WarmArchive build_warm_archive(const cdn::Fleet& prototype,
                               const workload::VideoCatalog& catalog,
                               double disk_fill, bool universal_head,
                               WarmBuildMode mode = WarmBuildMode::kAuto);

}  // namespace vstream::engine
