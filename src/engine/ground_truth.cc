#include "engine/ground_truth.h"

#include <utility>

namespace vstream::engine {

void GroundTruth::merge(GroundTruth&& other) {
  for (auto& [session, chunks] : other.ds_anomalies) {
    ds_anomalies[session] = std::move(chunks);
  }
  for (const auto& [session, flag] : other.proxied) {
    proxied[session] = flag;
  }
  total_chunks += other.total_chunks;
  total_ds_anomalies += other.total_ds_anomalies;
  stall_abandonments += other.stall_abandonments;
  request_timeouts += other.request_timeouts;
  chunk_retries += other.chunk_retries;
  failover_events += other.failover_events;
  failed_sessions += other.failed_sessions;
}

}  // namespace vstream::engine
