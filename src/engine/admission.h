// Session admission: materialize the whole arrival schedule up front.
//
// Admission is the only stage that touches the master RNG, and it is
// always single-threaded: specs and per-session RNG substream seeds are
// drawn in one fixed order (generator draw, then fork-seed draw, per
// session), so the admitted list — and therefore everything downstream —
// is a pure function of (scenario, seed), independent of how many shards
// later execute it.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "workload/scenario.h"
#include "workload/session_generator.h"

namespace vstream::engine {

struct AdmittedSession {
  workload::SessionSpec spec;
  /// Seed of the session's private Rng substream (Rng(rng_seed) on any
  /// shard reproduces exactly the substream rng.fork() would have built).
  std::uint64_t rng_seed = 0;
};

/// Draw scenario.session_count sessions from `generator`.  Returned in
/// generation order: session ids ascending, start times nondecreasing.
std::vector<AdmittedSession> admit_sessions(const workload::Scenario& scenario,
                                            workload::SessionGenerator& generator,
                                            sim::Rng& master_rng);

}  // namespace vstream::engine
