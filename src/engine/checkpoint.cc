#include "engine/checkpoint.h"

#include <algorithm>
#include <bit>
#include <fstream>
#include <stdexcept>
#include <string>
#include <system_error>

#include "failpoints/failpoint.h"
#include "sim/host_error.h"
#include "telemetry/crc32c.h"

namespace vstream::engine {

namespace {

constexpr std::uint32_t kCkptMagic = 0x504B4356;  // "VCKP"
constexpr std::uint32_t kCkptVersion = 1;

void put_u32(std::string& out, std::uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out.append(bytes, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out.append(bytes, 8);
}

std::uint32_t load_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t load_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

/// Bounds-checked payload cursor; overruns throw (caught by
/// read_checkpoint and mapped to "no checkpoint").
struct Cursor {
  const char* p;
  const char* end;

  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end - p) < n) {
      throw std::runtime_error("checkpoint: truncated payload");
    }
  }
  std::uint32_t get_u32() {
    need(4);
    const std::uint32_t v = load_u32(p);
    p += 4;
    return v;
  }
  std::uint64_t get_u64() {
    need(8);
    const std::uint64_t v = load_u64(p);
    p += 8;
    return v;
  }
};

// FNV-1a 64-bit — the fingerprint only needs to distinguish *different*
// run configurations deterministically, not resist adversaries.
struct Fnv {
  std::uint64_t h = 0xCBF29CE484222325ull;

  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFu;
      h *= 0x100000001B3ull;
    }
  }
  void mix_f64(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
};

void put_ground_truth(std::string& out, const GroundTruth& gt) {
  // Maps serialize in ascending key order so the byte stream (and its
  // CRC) is deterministic regardless of unordered_map iteration order.
  std::vector<std::uint64_t> keys;
  keys.reserve(gt.ds_anomalies.size());
  for (const auto& [id, chunks] : gt.ds_anomalies) keys.push_back(id);
  std::sort(keys.begin(), keys.end());
  put_u64(out, keys.size());
  for (const std::uint64_t id : keys) {
    const auto& chunks = gt.ds_anomalies.at(id);
    put_u64(out, id);
    put_u32(out, static_cast<std::uint32_t>(chunks.size()));
    for (const std::uint32_t chunk : chunks) put_u32(out, chunk);
  }

  keys.clear();
  for (const auto& [id, flag] : gt.proxied) keys.push_back(id);
  std::sort(keys.begin(), keys.end());
  put_u64(out, keys.size());
  for (const std::uint64_t id : keys) {
    put_u64(out, id);
    put_u32(out, gt.proxied.at(id) ? 1 : 0);
  }

  put_u64(out, gt.total_chunks);
  put_u64(out, gt.total_ds_anomalies);
  put_u64(out, gt.stall_abandonments);
  put_u64(out, gt.request_timeouts);
  put_u64(out, gt.chunk_retries);
  put_u64(out, gt.failover_events);
  put_u64(out, gt.failed_sessions);
}

GroundTruth get_ground_truth(Cursor& c) {
  GroundTruth gt;
  const std::uint64_t n_anomalies = c.get_u64();
  gt.ds_anomalies.reserve(n_anomalies);
  for (std::uint64_t i = 0; i < n_anomalies; ++i) {
    const std::uint64_t id = c.get_u64();
    const std::uint32_t count = c.get_u32();
    std::vector<std::uint32_t>& chunks = gt.ds_anomalies[id];
    chunks.reserve(count);
    for (std::uint32_t j = 0; j < count; ++j) chunks.push_back(c.get_u32());
  }
  const std::uint64_t n_proxied = c.get_u64();
  gt.proxied.reserve(n_proxied);
  for (std::uint64_t i = 0; i < n_proxied; ++i) {
    const std::uint64_t id = c.get_u64();
    gt.proxied[id] = c.get_u32() != 0;
  }
  gt.total_chunks = c.get_u64();
  gt.total_ds_anomalies = c.get_u64();
  gt.stall_abandonments = c.get_u64();
  gt.request_timeouts = c.get_u64();
  gt.chunk_retries = c.get_u64();
  gt.failover_events = c.get_u64();
  gt.failed_sessions = c.get_u64();
  return gt;
}

void put_server_stats(std::string& out,
                      const std::vector<cdn::ServerStats>& stats) {
  put_u64(out, stats.size());
  for (const cdn::ServerStats& s : stats) {
    put_u64(out, s.requests_served);
    put_u64(out, s.ram_hits);
    put_u64(out, s.disk_hits);
    put_u64(out, s.misses);
    put_u64(out, s.prefetched_chunks);
    put_u64(out, s.collapsed_misses);
    put_u64(out, s.backend_fetches);
    put_u64(out, s.stale_serves);
    put_u64(out, s.backend_errors);
    put_u64(out, s.shed_requests);
    put_u64(out, s.hedged_fetches);
    put_u64(out, s.hedge_wins);
    put_u64(out, s.breaker_open_transitions);
    put_u64(out, s.retry_budget_exhausted);
    put_u64(out, s.swr_serves);
  }
}

std::vector<cdn::ServerStats> get_server_stats(Cursor& c) {
  const std::uint64_t n = c.get_u64();
  std::vector<cdn::ServerStats> stats;
  stats.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    cdn::ServerStats s;
    s.requests_served = c.get_u64();
    s.ram_hits = c.get_u64();
    s.disk_hits = c.get_u64();
    s.misses = c.get_u64();
    s.prefetched_chunks = c.get_u64();
    s.collapsed_misses = c.get_u64();
    s.backend_fetches = c.get_u64();
    s.stale_serves = c.get_u64();
    s.backend_errors = c.get_u64();
    s.shed_requests = c.get_u64();
    s.hedged_fetches = c.get_u64();
    s.hedge_wins = c.get_u64();
    s.breaker_open_transitions = c.get_u64();
    s.retry_budget_exhausted = c.get_u64();
    s.swr_serves = c.get_u64();
    stats.push_back(s);
  }
  return stats;
}

}  // namespace

std::uint64_t run_fingerprint(const std::vector<AdmittedSession>& admitted,
                              std::size_t shard_count,
                              const faults::FaultSchedule* faults) {
  Fnv fnv;
  fnv.mix(admitted.size());
  for (const AdmittedSession& session : admitted) {
    fnv.mix(session.spec.session_id);
    fnv.mix(session.rng_seed);
    fnv.mix_f64(session.spec.start_time_ms);
  }
  fnv.mix(shard_count);
  if (faults != nullptr) {
    for (const faults::FaultEvent& event : faults->events()) {
      fnv.mix(static_cast<std::uint64_t>(event.kind));
      fnv.mix_f64(event.at_ms);
      fnv.mix_f64(event.duration_ms);
      fnv.mix(event.pop);
      fnv.mix(event.server);
      fnv.mix_f64(event.magnitude);
    }
  }
  return fnv.h;
}

void write_checkpoint(const std::filesystem::path& path,
                      const ShardCheckpoint& checkpoint) {
  std::string payload;
  put_u64(payload, checkpoint.fingerprint);
  put_u64(payload, checkpoint.shard_index);
  put_u64(payload, checkpoint.shard_count);
  put_u64(payload, checkpoint.next_index);
  put_u64(payload, checkpoint.spill_committed_bytes);
  put_u64(payload, checkpoint.spill_blocks_written);
  put_ground_truth(payload, checkpoint.ground_truth);
  put_server_stats(payload, checkpoint.server_stats);

  std::string file;
  put_u32(file, kCkptMagic);
  put_u32(file, kCkptVersion);
  put_u64(file, payload.size());
  file += payload;
  put_u32(file, telemetry::crc32c(payload.data(), payload.size()));

  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw sim::HostIoError("checkpoint: cannot open " + tmp.string());
    }
    if (failpoints::should_fail(failpoints::Site::kCheckpointWrite)) {
      out.setstate(std::ios::badbit);
    }
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
    out.flush();
    out.close();
    if (out.fail()) {
      // A failed tmp write never touches the previous sidecar at `path`;
      // drop the torn tmp so nothing mistakes it for a checkpoint.
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      throw sim::HostIoError("checkpoint: error writing " + tmp.string());
    }
  }
  // Atomic within the directory: a crash leaves either the old complete
  // sidecar or the new complete sidecar, never a torn one at `path`.
  std::error_code rename_ec;
  if (failpoints::should_fail(failpoints::Site::kCheckpointRename)) {
    rename_ec = std::make_error_code(std::errc::io_error);
  } else {
    std::filesystem::rename(tmp, path, rename_ec);
  }
  if (rename_ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw sim::HostIoError("checkpoint: cannot rename " + tmp.string() +
                           " to " + path.string() + ": " +
                           rename_ec.message());
  }
}

std::optional<ShardCheckpoint> read_checkpoint(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  char header[16];
  if (!in.read(header, sizeof header)) return std::nullopt;
  if (load_u32(header) != kCkptMagic) return std::nullopt;
  if (load_u32(header + 4) != kCkptVersion) return std::nullopt;
  const std::uint64_t payload_size = load_u64(header + 8);
  // Sanity-bound the allocation against the real file size.
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  if (file_size < sizeof header + 4 ||
      payload_size > file_size - sizeof header - 4) {
    return std::nullopt;
  }
  in.seekg(sizeof header, std::ios::beg);
  std::string payload(payload_size, '\0');
  char crc_raw[4];
  if (!in.read(payload.data(), static_cast<std::streamsize>(payload_size)) ||
      !in.read(crc_raw, 4)) {
    return std::nullopt;
  }
  if (telemetry::crc32c(payload.data(), payload.size()) !=
      load_u32(crc_raw)) {
    return std::nullopt;
  }

  try {
    Cursor c{payload.data(), payload.data() + payload.size()};
    ShardCheckpoint checkpoint;
    checkpoint.fingerprint = c.get_u64();
    checkpoint.shard_index = c.get_u64();
    checkpoint.shard_count = c.get_u64();
    checkpoint.next_index = c.get_u64();
    checkpoint.spill_committed_bytes = c.get_u64();
    checkpoint.spill_blocks_written = c.get_u64();
    checkpoint.ground_truth = get_ground_truth(c);
    checkpoint.server_stats = get_server_stats(c);
    if (c.p != c.end) return std::nullopt;
    return checkpoint;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace vstream::engine
