// Simulator ground truth for validation (never fed to analyses).
//
// Lives in the engine layer so every run mode — the legacy coupled
// core::Pipeline facade and the sharded engine — accounts into the same
// structure, and per-shard instances can be merged after a parallel run.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "faults/fault_schedule.h"

namespace vstream::engine {

struct GroundTruth {
  /// session -> chunk ids whose bytes were held by the download stack.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> ds_anomalies;
  /// sessions that really sat behind a proxy.
  std::unordered_map<std::uint64_t, bool> proxied;
  std::uint64_t total_chunks = 0;
  std::uint64_t total_ds_anomalies = 0;
  /// Sessions cut short because a stall drove the viewer away (only with
  /// scenario.stall_abandonment_probability > 0).
  std::uint64_t stall_abandonments = 0;

  // -- failure injection (what really happened, for scoring detectors) --

  /// The injected fault epochs, verbatim (empty without fault injection).
  std::vector<faults::FaultEvent> injected_faults;
  std::uint64_t request_timeouts = 0;   ///< attempts abandoned at timeout
  std::uint64_t chunk_retries = 0;      ///< re-issued chunk requests
  std::uint64_t failover_events = 0;    ///< mid-session server switches
  std::uint64_t failed_sessions = 0;    ///< abandoned: recovery exhausted

  /// Fold another shard's accounting into this one.  Session-keyed maps are
  /// disjoint across shards (each session runs on exactly one shard);
  /// injected_faults is identical on every shard and must be set by the
  /// caller once, so merge() leaves it alone.
  void merge(GroundTruth&& other);
};

}  // namespace vstream::engine
