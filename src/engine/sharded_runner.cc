#include "engine/sharded_runner.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>

#include "engine/checkpoint.h"
#include "sim/host_error.h"
#include "telemetry/spill_sink.h"

namespace vstream::engine {

namespace {

/// Stable-sort a record stream by session id.  Stability preserves each
/// session's internal record order (chunks ascend, snapshots ascend in
/// time), and since every session lives wholly inside one shard, the
/// sorted stream depends only on per-session content — not on the shard
/// count or the interleaving.
template <typename Record>
void canonicalize(std::vector<Record>& records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     return a.session_id < b.session_id;
                   });
}

template <typename Record>
void append(std::vector<Record>& into, std::vector<Record>&& from) {
  into.insert(into.end(), std::make_move_iterator(from.begin()),
              std::make_move_iterator(from.end()));
}

}  // namespace

std::vector<std::vector<AdmittedSession>> partition_sessions(
    const std::vector<AdmittedSession>& admitted, std::size_t shard_count) {
  std::vector<std::vector<AdmittedSession>> parts(std::max<std::size_t>(
      1, shard_count));
  for (const AdmittedSession& session : admitted) {
    parts[session.spec.session_id % parts.size()].push_back(session);
  }
  return parts;
}

ShardResult merge_shard_results(std::vector<ShardResult> parts) {
  return merge_shard_results(std::move(parts), nullptr);
}

ShardResult merge_shard_results(std::vector<ShardResult> parts,
                                runtime::Executor* executor) {
  ShardResult merged;

  // Accounting first, serially in part order: ground truth and server
  // stats are element-wise sums, spill files must keep shard order.
  // Parts may disagree on server_stats size (an empty shard that never
  // built a fleet reports none) — size to the largest part seen, not the
  // first, so a leading empty shard cannot truncate the fleet counters.
  for (ShardResult& part : parts) {
    merged.ground_truth.merge(std::move(part.ground_truth));
    merged.completed = merged.completed && part.completed;
    merged.checkpoints_degraded =
        merged.checkpoints_degraded || part.checkpoints_degraded;
    for (std::filesystem::path& file : part.spill_files) {
      merged.spill_files.push_back(std::move(file));
    }
    if (merged.server_stats.size() < part.server_stats.size()) {
      merged.server_stats.resize(part.server_stats.size());
    }
    for (std::size_t i = 0; i < part.server_stats.size(); ++i) {
      merged.server_stats[i] += part.server_stats[i];
    }
  }

  // The five record streams are disjoint dataset members, so their
  // append-in-part-order + canonical sort runs as five independent
  // tasks.  Each task reads only its own member of every part; output
  // order is fixed by part order + session id, never by task timing.
  const auto merge_stream = [&parts, &merged](auto member) {
    auto& into = merged.dataset.*member;
    std::size_t total = 0;
    for (const ShardResult& part : parts) {
      total += (part.dataset.*member).size();
    }
    into.reserve(total);
    for (ShardResult& part : parts) {
      append(into, std::move(part.dataset.*member));
    }
    canonicalize(into);
  };
  const std::array<std::function<void()>, 5> streams = {
      [&] { merge_stream(&telemetry::Dataset::player_sessions); },
      [&] { merge_stream(&telemetry::Dataset::cdn_sessions); },
      [&] { merge_stream(&telemetry::Dataset::player_chunks); },
      [&] { merge_stream(&telemetry::Dataset::cdn_chunks); },
      [&] { merge_stream(&telemetry::Dataset::tcp_snapshots); },
  };
  if (executor != nullptr && executor->workers() > 1) {
    executor->parallel_for(streams.size(),
                           [&](std::size_t i) { streams[i](); }, nullptr,
                           "merge");
  } else {
    for (const auto& stream : streams) stream();
  }
  return merged;
}

ShardResult run_sharded(const workload::Scenario& scenario,
                        const workload::VideoCatalog& catalog,
                        const WarmArchive& warm,
                        const faults::FaultSchedule* faults,
                        const std::unordered_set<net::Prefix24>* bad_prefixes,
                        const std::vector<AdmittedSession>& admitted,
                        std::size_t shard_count,
                        const std::filesystem::path* spill_dir,
                        const CheckpointConfig* checkpoint,
                        const ExecOptions* exec,
                        runtime::ParallelStats* stats) {
  if (checkpoint != nullptr && spill_dir == nullptr) {
    throw std::invalid_argument(
        "run_sharded: checkpointing requires spill-mode telemetry");
  }
  const ExecOptions options = exec != nullptr ? *exec : ExecOptions{};
  runtime::Executor executor(runtime::resolve_thread_count(options.threads));

  const std::vector<std::vector<AdmittedSession>> parts =
      partition_sessions(admitted, shard_count);
  std::vector<ShardResult> results(parts.size());

  // Degradation policy: a failed sidecar write (full disk, unwritable
  // dir, checkpoint.write/rename failpoint) must not kill a run whose
  // *data* path is healthy — the spill writes themselves still commit.
  // First failure warns once; the flag stops every shard's further
  // checkpoint attempts (the disk is shared, retrying per batch just
  // spams), and existing sidecars are left intact, so a crash after
  // degradation still resumes from the last good checkpoint.
  std::atomic<bool> checkpoints_disabled{false};

  // Checkpointed path: run the shard's partition in sequential batches on
  // fresh Shard replicas (batching is just a finer sharding — see
  // engine/checkpoint.h), flushing the spill file and writing a sidecar
  // after every batch.
  const auto run_checkpointed = [&](std::size_t i) {
    const std::span<const AdmittedSession> part(parts[i]);
    const std::filesystem::path spill_file =
        *spill_dir / ("shard-" + std::to_string(i) + ".vspill");
    const std::filesystem::path ckpt_file =
        checkpoint->dir / ("shard-" + std::to_string(i) + ".vckpt");

    std::size_t next = 0;
    GroundTruth ground_truth;
    std::vector<cdn::ServerStats> server_stats;
    std::unique_ptr<telemetry::SpillSink> sink;
    if (checkpoint->resume) {
      if (std::optional<ShardCheckpoint> saved = read_checkpoint(ckpt_file)) {
        if (saved->fingerprint != checkpoint->fingerprint ||
            saved->shard_index != i ||
            saved->shard_count != parts.size()) {
          throw std::runtime_error(
              "checkpoint: " + ckpt_file.string() +
              " belongs to a different run configuration (scenario, seed, "
              "shard count, or fault schedule changed) — refusing to mix");
        }
        next = std::min<std::size_t>(saved->next_index, part.size());
        ground_truth = std::move(saved->ground_truth);
        server_stats = std::move(saved->server_stats);
        sink = std::make_unique<telemetry::SpillSink>(
            spill_file, saved->spill_committed_bytes,
            saved->spill_blocks_written);
      }
    }
    if (sink == nullptr) {  // fresh start (no/invalid sidecar)
      next = 0;
      ground_truth = GroundTruth{};
      server_stats.clear();
      sink = std::make_unique<telemetry::SpillSink>(spill_file,
                                                    options.spill_format);
    }

    const std::size_t interval = std::max<std::size_t>(1, checkpoint->interval);
    std::size_t batches = 0;
    while (next < part.size()) {
      const std::size_t count = std::min(interval, part.size() - next);
      Shard shard(scenario, catalog, warm, faults, bad_prefixes, sink.get());
      ShardResult batch = shard.run(part.subspan(next, count));
      next += count;
      ground_truth.merge(std::move(batch.ground_truth));
      if (server_stats.empty()) {
        server_stats.resize(batch.server_stats.size());
      }
      for (std::size_t j = 0; j < batch.server_stats.size(); ++j) {
        server_stats[j] += batch.server_stats[j];
      }

      ShardCheckpoint cp;
      cp.fingerprint = checkpoint->fingerprint;
      cp.shard_index = i;
      cp.shard_count = parts.size();
      cp.next_index = next;
      // Sessions the batch never completed (the finish() epilogue would
      // normally write them) must be durable before the batch counts as
      // committed, and the flush must precede recording the offset: every
      // byte the sidecar claims is then in the OS page cache, which
      // survives SIGKILL.
      sink->flush_live();
      cp.spill_committed_bytes = sink->flush_committed();
      cp.spill_blocks_written = sink->blocks_written();
      cp.ground_truth = ground_truth;
      cp.server_stats = server_stats;
      if (!checkpoints_disabled.load(std::memory_order_relaxed)) {
        try {
          write_checkpoint(ckpt_file, cp);
        } catch (const sim::HostIoError& error) {
          if (!checkpoints_disabled.exchange(true)) {
            std::fprintf(
                stderr,
                "vstream: warning: %s — continuing without further "
                "checkpoints (run completes; crash-resume falls back to the "
                "last good sidecar)\n",
                error.what());
          }
        }
      }

      ++batches;
      if (checkpoint->stop_after_batches != 0 &&
          batches >= checkpoint->stop_after_batches && next < part.size()) {
        // Deliberate early stop (test/chaos hook): leave the spill file in
        // its committed state for a later resume.
        results[i].ground_truth = std::move(ground_truth);
        results[i].server_stats = std::move(server_stats);
        results[i].spill_files.push_back(spill_file);
        results[i].completed = false;
        results[i].checkpoints_degraded =
            checkpoints_disabled.load(std::memory_order_relaxed);
        return;
      }
    }
    sink->finish();
    results[i].ground_truth = std::move(ground_truth);
    results[i].server_stats = std::move(server_stats);
    results[i].spill_files.push_back(spill_file);
    results[i].checkpoints_degraded =
        checkpoints_disabled.load(std::memory_order_relaxed);
  };

  // Everything shared is read-only while tasks run; each task writes
  // only its own results slot, so the executor's placement decisions
  // (which worker, what steal order) are invisible in the output.  A
  // task's exception (resume mismatch, disk full, ...) is parked and
  // rethrown on the calling thread after the run drains.
  if (spill_dir != nullptr) {
    // Spill / checkpoint mode: task = logical shard.  A shard owns its
    // spill file (single writer, and the file set keeps shard order for
    // the canonical merge) and its sidecar commit sequence — the
    // checkpoint batches still run sequentially *inside* the task.
    executor.parallel_for(
        parts.size(),
        [&](std::size_t i) {
          if (checkpoint != nullptr) {
            run_checkpointed(i);
            return;
          }
          const std::filesystem::path file =
              *spill_dir / ("shard-" + std::to_string(i) + ".vspill");
          telemetry::SpillSink sink(file, options.spill_format);
          Shard shard(scenario, catalog, warm, faults, bad_prefixes, &sink);
          results[i] = shard.run(parts[i]);
          sink.finish();
          results[i].spill_files.push_back(file);
        },
        stats, "shard");
  } else {
    // Memory mode: task = one memory_batch-session slice of a shard's
    // partition on a fresh replica.  Batching is just finer sharding
    // (bit-identical — the checkpoint-equivalence tests prove the same
    // split), and fine tasks are what lets work-stealing absorb a
    // skewed partition.  Batch list order (shard, then offset) is the
    // deterministic merge order; empty shards keep one empty task so
    // their server-stats shape still reaches the merge.
    struct MemoryBatch {
      std::size_t shard;
      std::size_t offset;
      std::size_t count;
    };
    const std::size_t batch_size =
        executor.workers() > 1
            ? std::max<std::size_t>(1, options.memory_batch != 0
                                           ? options.memory_batch
                                           : kDefaultMemoryBatch)
            : 0;  // one worker: one task per shard, no replica churn
    std::vector<MemoryBatch> batches;
    batches.reserve(parts.size());
    for (std::size_t s = 0; s < parts.size(); ++s) {
      const std::size_t size = parts[s].size();
      std::size_t offset = 0;
      do {
        const std::size_t count =
            batch_size == 0 ? size : std::min(batch_size, size - offset);
        batches.push_back({s, offset, count});
        offset += count;
      } while (offset < size);
    }
    results.assign(batches.size(), ShardResult{});
    executor.parallel_for(
        batches.size(),
        [&](std::size_t t) {
          const MemoryBatch& batch = batches[t];
          Shard shard(scenario, catalog, warm, faults, bad_prefixes);
          results[t] = shard.run(
              std::span<const AdmittedSession>(parts[batch.shard])
                  .subspan(batch.offset, batch.count));
        },
        stats, "shard");
  }

  return merge_shard_results(std::move(results),
                             executor.workers() > 1 ? &executor : nullptr);
}

}  // namespace vstream::engine
