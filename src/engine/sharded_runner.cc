#include "engine/sharded_runner.h"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>

#include "telemetry/spill_sink.h"

namespace vstream::engine {

namespace {

/// Stable-sort a record stream by session id.  Stability preserves each
/// session's internal record order (chunks ascend, snapshots ascend in
/// time), and since every session lives wholly inside one shard, the
/// sorted stream depends only on per-session content — not on the shard
/// count or the interleaving.
template <typename Record>
void canonicalize(std::vector<Record>& records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     return a.session_id < b.session_id;
                   });
}

template <typename Record>
void append(std::vector<Record>& into, std::vector<Record>&& from) {
  into.insert(into.end(), std::make_move_iterator(from.begin()),
              std::make_move_iterator(from.end()));
}

}  // namespace

std::vector<std::vector<AdmittedSession>> partition_sessions(
    const std::vector<AdmittedSession>& admitted, std::size_t shard_count) {
  std::vector<std::vector<AdmittedSession>> parts(std::max<std::size_t>(
      1, shard_count));
  for (const AdmittedSession& session : admitted) {
    parts[session.spec.session_id % parts.size()].push_back(session);
  }
  return parts;
}

ShardResult merge_shard_results(std::vector<ShardResult> parts) {
  ShardResult merged;
  std::size_t sessions = 0, chunks = 0, snapshots = 0;
  for (const ShardResult& part : parts) {
    sessions += part.dataset.player_sessions.size();
    chunks += part.dataset.player_chunks.size();
    snapshots += part.dataset.tcp_snapshots.size();
  }
  merged.dataset.player_sessions.reserve(sessions);
  merged.dataset.cdn_sessions.reserve(sessions);
  merged.dataset.player_chunks.reserve(chunks);
  merged.dataset.cdn_chunks.reserve(chunks);
  merged.dataset.tcp_snapshots.reserve(snapshots);

  for (ShardResult& part : parts) {
    append(merged.dataset.player_sessions,
           std::move(part.dataset.player_sessions));
    append(merged.dataset.cdn_sessions, std::move(part.dataset.cdn_sessions));
    append(merged.dataset.player_chunks,
           std::move(part.dataset.player_chunks));
    append(merged.dataset.cdn_chunks, std::move(part.dataset.cdn_chunks));
    append(merged.dataset.tcp_snapshots,
           std::move(part.dataset.tcp_snapshots));
    merged.ground_truth.merge(std::move(part.ground_truth));
    for (std::filesystem::path& file : part.spill_files) {
      merged.spill_files.push_back(std::move(file));
    }
    if (merged.server_stats.empty()) {
      merged.server_stats.resize(part.server_stats.size());
    }
    for (std::size_t i = 0; i < part.server_stats.size(); ++i) {
      merged.server_stats[i] += part.server_stats[i];
    }
  }

  canonicalize(merged.dataset.player_sessions);
  canonicalize(merged.dataset.cdn_sessions);
  canonicalize(merged.dataset.player_chunks);
  canonicalize(merged.dataset.cdn_chunks);
  canonicalize(merged.dataset.tcp_snapshots);
  return merged;
}

ShardResult run_sharded(const workload::Scenario& scenario,
                        const workload::VideoCatalog& catalog,
                        const WarmArchive& warm,
                        const faults::FaultSchedule* faults,
                        const std::unordered_set<net::Prefix24>* bad_prefixes,
                        const std::vector<AdmittedSession>& admitted,
                        std::size_t shard_count,
                        const std::filesystem::path* spill_dir) {
  const std::vector<std::vector<AdmittedSession>> parts =
      partition_sessions(admitted, shard_count);
  std::vector<ShardResult> results(parts.size());

  // One shard = one spill file, so shards never contend on a writer and
  // the file set records the shard order the canonical merge expects.
  const auto run_one = [&](std::size_t i) {
    if (spill_dir == nullptr) {
      Shard shard(scenario, catalog, warm, faults, bad_prefixes);
      results[i] = shard.run(parts[i]);
      return;
    }
    const std::filesystem::path file =
        *spill_dir / ("shard-" + std::to_string(i) + ".vspill");
    telemetry::SpillSink sink(file);
    Shard shard(scenario, catalog, warm, faults, bad_prefixes, &sink);
    results[i] = shard.run(parts[i]);
    sink.finish();
    results[i].spill_files.push_back(file);
  };

  if (parts.size() == 1) {
    run_one(0);
  } else {
    // One worker thread per shard.  Everything shared is read-only while
    // the threads run; each thread writes only its own results slot.
    std::vector<std::thread> workers;
    workers.reserve(parts.size());
    for (std::size_t i = 0; i < parts.size(); ++i) {
      workers.emplace_back([&, i] { run_one(i); });
    }
    for (std::thread& worker : workers) worker.join();
  }

  return merge_shard_results(std::move(results));
}

}  // namespace vstream::engine
