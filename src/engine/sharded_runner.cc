#include "engine/sharded_runner.h"

#include <algorithm>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "engine/checkpoint.h"
#include "telemetry/spill_sink.h"

namespace vstream::engine {

namespace {

/// Stable-sort a record stream by session id.  Stability preserves each
/// session's internal record order (chunks ascend, snapshots ascend in
/// time), and since every session lives wholly inside one shard, the
/// sorted stream depends only on per-session content — not on the shard
/// count or the interleaving.
template <typename Record>
void canonicalize(std::vector<Record>& records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     return a.session_id < b.session_id;
                   });
}

template <typename Record>
void append(std::vector<Record>& into, std::vector<Record>&& from) {
  into.insert(into.end(), std::make_move_iterator(from.begin()),
              std::make_move_iterator(from.end()));
}

}  // namespace

std::vector<std::vector<AdmittedSession>> partition_sessions(
    const std::vector<AdmittedSession>& admitted, std::size_t shard_count) {
  std::vector<std::vector<AdmittedSession>> parts(std::max<std::size_t>(
      1, shard_count));
  for (const AdmittedSession& session : admitted) {
    parts[session.spec.session_id % parts.size()].push_back(session);
  }
  return parts;
}

ShardResult merge_shard_results(std::vector<ShardResult> parts) {
  ShardResult merged;
  std::size_t sessions = 0, chunks = 0, snapshots = 0;
  for (const ShardResult& part : parts) {
    sessions += part.dataset.player_sessions.size();
    chunks += part.dataset.player_chunks.size();
    snapshots += part.dataset.tcp_snapshots.size();
  }
  merged.dataset.player_sessions.reserve(sessions);
  merged.dataset.cdn_sessions.reserve(sessions);
  merged.dataset.player_chunks.reserve(chunks);
  merged.dataset.cdn_chunks.reserve(chunks);
  merged.dataset.tcp_snapshots.reserve(snapshots);

  for (ShardResult& part : parts) {
    append(merged.dataset.player_sessions,
           std::move(part.dataset.player_sessions));
    append(merged.dataset.cdn_sessions, std::move(part.dataset.cdn_sessions));
    append(merged.dataset.player_chunks,
           std::move(part.dataset.player_chunks));
    append(merged.dataset.cdn_chunks, std::move(part.dataset.cdn_chunks));
    append(merged.dataset.tcp_snapshots,
           std::move(part.dataset.tcp_snapshots));
    merged.ground_truth.merge(std::move(part.ground_truth));
    merged.completed = merged.completed && part.completed;
    for (std::filesystem::path& file : part.spill_files) {
      merged.spill_files.push_back(std::move(file));
    }
    if (merged.server_stats.empty()) {
      merged.server_stats.resize(part.server_stats.size());
    }
    for (std::size_t i = 0; i < part.server_stats.size(); ++i) {
      merged.server_stats[i] += part.server_stats[i];
    }
  }

  canonicalize(merged.dataset.player_sessions);
  canonicalize(merged.dataset.cdn_sessions);
  canonicalize(merged.dataset.player_chunks);
  canonicalize(merged.dataset.cdn_chunks);
  canonicalize(merged.dataset.tcp_snapshots);
  return merged;
}

ShardResult run_sharded(const workload::Scenario& scenario,
                        const workload::VideoCatalog& catalog,
                        const WarmArchive& warm,
                        const faults::FaultSchedule* faults,
                        const std::unordered_set<net::Prefix24>* bad_prefixes,
                        const std::vector<AdmittedSession>& admitted,
                        std::size_t shard_count,
                        const std::filesystem::path* spill_dir,
                        const CheckpointConfig* checkpoint) {
  if (checkpoint != nullptr && spill_dir == nullptr) {
    throw std::invalid_argument(
        "run_sharded: checkpointing requires spill-mode telemetry");
  }
  const std::vector<std::vector<AdmittedSession>> parts =
      partition_sessions(admitted, shard_count);
  std::vector<ShardResult> results(parts.size());

  // Checkpointed path: run the shard's partition in sequential batches on
  // fresh Shard replicas (batching is just a finer sharding — see
  // engine/checkpoint.h), flushing the spill file and writing a sidecar
  // after every batch.
  const auto run_checkpointed = [&](std::size_t i) {
    const std::span<const AdmittedSession> part(parts[i]);
    const std::filesystem::path spill_file =
        *spill_dir / ("shard-" + std::to_string(i) + ".vspill");
    const std::filesystem::path ckpt_file =
        checkpoint->dir / ("shard-" + std::to_string(i) + ".vckpt");

    std::size_t next = 0;
    GroundTruth ground_truth;
    std::vector<cdn::ServerStats> server_stats;
    std::unique_ptr<telemetry::SpillSink> sink;
    if (checkpoint->resume) {
      if (std::optional<ShardCheckpoint> saved = read_checkpoint(ckpt_file)) {
        if (saved->fingerprint != checkpoint->fingerprint ||
            saved->shard_index != i ||
            saved->shard_count != parts.size()) {
          throw std::runtime_error(
              "checkpoint: " + ckpt_file.string() +
              " belongs to a different run configuration (scenario, seed, "
              "shard count, or fault schedule changed) — refusing to mix");
        }
        next = std::min<std::size_t>(saved->next_index, part.size());
        ground_truth = std::move(saved->ground_truth);
        server_stats = std::move(saved->server_stats);
        sink = std::make_unique<telemetry::SpillSink>(
            spill_file, saved->spill_committed_bytes,
            saved->spill_blocks_written);
      }
    }
    if (sink == nullptr) {  // fresh start (no/invalid sidecar)
      next = 0;
      ground_truth = GroundTruth{};
      server_stats.clear();
      sink = std::make_unique<telemetry::SpillSink>(spill_file);
    }

    const std::size_t interval = std::max<std::size_t>(1, checkpoint->interval);
    std::size_t batches = 0;
    while (next < part.size()) {
      const std::size_t count = std::min(interval, part.size() - next);
      Shard shard(scenario, catalog, warm, faults, bad_prefixes, sink.get());
      ShardResult batch = shard.run(part.subspan(next, count));
      next += count;
      ground_truth.merge(std::move(batch.ground_truth));
      if (server_stats.empty()) {
        server_stats.resize(batch.server_stats.size());
      }
      for (std::size_t j = 0; j < batch.server_stats.size(); ++j) {
        server_stats[j] += batch.server_stats[j];
      }

      ShardCheckpoint cp;
      cp.fingerprint = checkpoint->fingerprint;
      cp.shard_index = i;
      cp.shard_count = parts.size();
      cp.next_index = next;
      // Sessions the batch never completed (the finish() epilogue would
      // normally write them) must be durable before the batch counts as
      // committed, and the flush must precede recording the offset: every
      // byte the sidecar claims is then in the OS page cache, which
      // survives SIGKILL.
      sink->flush_live();
      cp.spill_committed_bytes = sink->flush_committed();
      cp.spill_blocks_written = sink->blocks_written();
      cp.ground_truth = ground_truth;
      cp.server_stats = server_stats;
      write_checkpoint(ckpt_file, cp);

      ++batches;
      if (checkpoint->stop_after_batches != 0 &&
          batches >= checkpoint->stop_after_batches && next < part.size()) {
        // Deliberate early stop (test/chaos hook): leave the spill file in
        // its committed state for a later resume.
        results[i].ground_truth = std::move(ground_truth);
        results[i].server_stats = std::move(server_stats);
        results[i].spill_files.push_back(spill_file);
        results[i].completed = false;
        return;
      }
    }
    sink->finish();
    results[i].ground_truth = std::move(ground_truth);
    results[i].server_stats = std::move(server_stats);
    results[i].spill_files.push_back(spill_file);
  };

  // One shard = one spill file, so shards never contend on a writer and
  // the file set records the shard order the canonical merge expects.
  const auto run_one = [&](std::size_t i) {
    if (checkpoint != nullptr) {
      run_checkpointed(i);
      return;
    }
    if (spill_dir == nullptr) {
      Shard shard(scenario, catalog, warm, faults, bad_prefixes);
      results[i] = shard.run(parts[i]);
      return;
    }
    const std::filesystem::path file =
        *spill_dir / ("shard-" + std::to_string(i) + ".vspill");
    telemetry::SpillSink sink(file);
    Shard shard(scenario, catalog, warm, faults, bad_prefixes, &sink);
    results[i] = shard.run(parts[i]);
    sink.finish();
    results[i].spill_files.push_back(file);
  };

  if (parts.size() == 1) {
    run_one(0);
  } else {
    // One worker thread per shard.  Everything shared is read-only while
    // the threads run; each thread writes only its own results slot.  A
    // worker's exception (resume mismatch, disk full, ...) is parked and
    // rethrown on the calling thread after every worker has joined.
    std::vector<std::thread> workers;
    std::vector<std::exception_ptr> errors(parts.size());
    workers.reserve(parts.size());
    for (std::size_t i = 0; i < parts.size(); ++i) {
      workers.emplace_back([&, i] {
        try {
          run_one(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    for (const std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  }

  return merge_shard_results(std::move(results));
}

}  // namespace vstream::engine
