#include "engine/warmup.h"

#include <algorithm>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "client/abr.h"

namespace vstream::engine {

namespace {

// Emulate the steady state of a long-running edge server under a
// partial-viewing workload, in two tiers:
//
//   1. every assigned video keeps its first few chunks cached at all
//      rungs — every viewer fetches the head of a video, so LRU retains
//      it (and it is exactly what the paper recommends pre-caching), and
//   2. the popular head of the catalog is cached in full, hot videos
//      freshest (so they also occupy RAM).
//
// Sessions on tail videos therefore hit the cached prefix and miss
// beyond it — reproducing §4.1-2's persistence shape (sessions with one
// miss average ~60% misses, while the overall rate stays ~2%).
constexpr std::uint32_t kPrefixChunks = 3;

/// Enumerate the warm set of the server at within-PoP index `sidx` in
/// admission order (cold -> hot, so the hottest videos end up freshest in
/// both LRU levels, i.e. in RAM), feeding each object to `admit`.
void enumerate_warm_set(
    const cdn::Fleet& prototype, const workload::VideoCatalog& catalog,
    std::uint32_t sidx, double disk_fill, bool universal_head,
    const std::function<void(const cdn::ChunkKey&, std::uint64_t)>& admit) {
  const auto ladder = client::default_bitrate_ladder();
  const double tau = catalog.chunk_duration_s();
  const cdn::AtsServer& server = prototype.server({0, sidx});
  const std::uint64_t budget = static_cast<std::uint64_t>(
      disk_fill * static_cast<double>(server.config().disk_bytes));

  const std::uint64_t chunk_size_all_rungs = [&] {
    std::uint64_t sum = 0;
    for (const std::uint32_t rung : ladder) sum += cdn::chunk_bytes(rung, tau);
    return sum;
  }();

  // Membership pass (hot -> cold): the popular head keeps full bodies
  // (~55% of the budget); the mid tail keeps a graded share of its
  // chunks (LRU retains what recent viewers fetched — heads always,
  // bodies in proportion to viewership); the deepest ~10% keeps
  // nothing, so its sessions miss from chunk 0.
  std::vector<std::uint32_t> assigned;
  for (std::uint32_t video = 0; video < catalog.size(); ++video) {
    if (prototype.server_index_for_video(video) != sidx) continue;
    assigned.push_back(video);
  }
  std::uint64_t bytes = 0;
  const std::uint64_t full_budget =
      static_cast<std::uint64_t>(0.55 * static_cast<double>(budget));
  std::size_t full_tier_count = 0;
  for (const std::uint32_t video : assigned) {
    const std::uint64_t body =
        catalog.video(video).chunk_count * chunk_size_all_rungs;
    if (bytes + body > full_budget) break;
    bytes += body;
    ++full_tier_count;
  }

  const auto warm_chunks_for = [&](std::size_t i) -> std::uint32_t {
    const workload::VideoMeta& meta = catalog.video(assigned[i]);
    if (i < full_tier_count) return meta.chunk_count;
    const double frac =
        static_cast<double>(i - full_tier_count) /
        std::max<double>(1.0,
                         static_cast<double>(assigned.size() - full_tier_count));
    const std::uint32_t head =
        universal_head ? std::min(kPrefixChunks, meta.chunk_count) : 0;
    if (frac >= 0.75) return head;  // never-watched deep tail
    // Graded retention: most of the body near the head of the band,
    // shrinking toward the prefix-only regime.
    const double w = 1.0 - frac * frac * frac;
    return std::max(std::min(kPrefixChunks, meta.chunk_count),
                    static_cast<std::uint32_t>(w * meta.chunk_count));
  };

  for (std::size_t i = assigned.size(); i-- > 0;) {
    const std::uint32_t video = assigned[i];
    const std::uint32_t warm_chunks = warm_chunks_for(i);
    for (std::uint32_t c = 0; c < warm_chunks; ++c) {
      for (const std::uint32_t rung : ladder) {
        admit(cdn::ChunkKey{video, c, rung},
              cdn::chunk_bytes_vbr(rung, tau, video, c));
      }
    }
  }

  if (universal_head) {
    // §4.3-3 take-away: the heads of ALL videos are pinned — admit them
    // last so they are the freshest objects and survive any eviction the
    // warm set itself caused.
    for (std::size_t i = assigned.size(); i-- > 0;) {
      const std::uint32_t video = assigned[i];
      const workload::VideoMeta& meta = catalog.video(video);
      const std::uint32_t head = std::min(kPrefixChunks, meta.chunk_count);
      for (std::uint32_t c = 0; c < head; ++c) {
        for (const std::uint32_t rung : ladder) {
          admit(cdn::ChunkKey{video, c, rung},
                cdn::chunk_bytes_vbr(rung, tau, video, c));
        }
      }
    }
  }
}

}  // namespace

WarmArchive::WarmArchive(const cdn::FleetConfig& config) {
  caches_.reserve(config.servers_per_pop);
  for (std::uint32_t sidx = 0; sidx < config.servers_per_pop; ++sidx) {
    caches_.emplace_back(config.server.ram_bytes, config.server.disk_bytes,
                         config.server.policy);
  }
}

void warm_fleet(cdn::Fleet& fleet, const workload::VideoCatalog& catalog,
                double disk_fill, bool universal_head) {
  const cdn::AtsConfig& server_config = fleet.config().server;
  const double ram_share =
      static_cast<double>(server_config.ram_bytes) /
      std::max(1.0, disk_fill * static_cast<double>(server_config.disk_bytes));
  for (std::uint32_t sidx = 0; sidx < fleet.servers_per_pop(); ++sidx) {
    std::size_t admits = 0;
    enumerate_warm_set(fleet, catalog, sidx, disk_fill, universal_head,
                       [&](const cdn::ChunkKey&, std::uint64_t) { ++admits; });
    const auto ram_objects =
        static_cast<std::size_t>(static_cast<double>(admits) * ram_share) + 16;
    // Warm content only depends on the within-PoP index, so one traversal
    // feeds the same-index server of every PoP.
    for (std::uint32_t pop = 0; pop < fleet.pop_count(); ++pop) {
      fleet.server({pop, sidx}).reserve_cache(ram_objects, admits);
    }
    enumerate_warm_set(fleet, catalog, sidx, disk_fill, universal_head,
                       [&](const cdn::ChunkKey& key, std::uint64_t size) {
                         for (std::uint32_t pop = 0; pop < fleet.pop_count();
                              ++pop) {
                           fleet.server({pop, sidx}).warm(key, size);
                         }
                       });
  }
}

namespace {

/// The final resident set of an empty LRU level fed an admission sequence:
/// dedupe by *last* admission (re-admits only refresh recency), then take
/// the maximal most-recent suffix whose bytes fit the capacity.  Greedy
/// LRU eviction can only ever remove objects older than that suffix — by
/// the time any suffix member could be threatened, everything older has
/// already been evicted and the remaining bytes fit.  Returned oldest ->
/// newest (admissible insertion order).  LRU-specific by construction;
/// tests/engine/warmup_test.cc pins the equivalence against the
/// write-through admission path.
std::vector<std::pair<cdn::ChunkKey, std::uint64_t>> lru_resident_suffix(
    const std::vector<std::pair<cdn::ChunkKey, std::uint64_t>>& sequence,
    const std::vector<char>& is_last, std::uint64_t capacity_bytes) {
  std::vector<std::pair<cdn::ChunkKey, std::uint64_t>> resident;
  std::uint64_t bytes = 0;
  for (std::size_t i = sequence.size(); i-- > 0;) {
    if (!is_last[i]) continue;
    const std::uint64_t size = sequence[i].second;
    if (size > capacity_bytes) continue;  // never admitted, evicts nothing
    if (bytes + size > capacity_bytes) break;
    bytes += size;
    resident.push_back(sequence[i]);
  }
  std::reverse(resident.begin(), resident.end());
  return resident;
}

}  // namespace

WarmArchive build_warm_archive(const cdn::Fleet& prototype,
                               const workload::VideoCatalog& catalog,
                               double disk_fill, bool universal_head,
                               WarmBuildMode mode) {
  WarmArchive archive(prototype.config());
  const cdn::AtsConfig& server = prototype.config().server;
  for (std::uint32_t sidx = 0; sidx < prototype.servers_per_pop(); ++sidx) {
    cdn::TwoLevelCache& cache = archive.mutable_for_server(sidx);
    if (mode == WarmBuildMode::kWriteThrough ||
        server.policy != cdn::PolicyKind::kLru) {
      // Non-LRU policies take the plain write-through admission path (the
      // suffix shortcut below encodes LRU's eviction order).
      enumerate_warm_set(prototype, catalog, sidx, disk_fill, universal_head,
                         [&](const cdn::ChunkKey& key, std::uint64_t size) {
                           cache.admit(key, size);
                         });
      continue;
    }
    // LRU fast path.  The archive is immutable once built — sharded serving
    // only reads residency — so instead of replaying every admission
    // through the write-through hierarchy (which cycles nearly the whole
    // warm set through the small RAM level), compute each level's final
    // resident set directly and insert exactly those objects.
    std::vector<std::pair<cdn::ChunkKey, std::uint64_t>> sequence;
    enumerate_warm_set(prototype, catalog, sidx, disk_fill, universal_head,
                       [&](const cdn::ChunkKey& key, std::uint64_t size) {
                         sequence.emplace_back(key, size);
                       });
    // Mark each key's last admission (recency order is by last touch).
    std::vector<char> is_last(sequence.size(), 0);
    std::unordered_set<cdn::ChunkKey, cdn::ChunkKeyHash> seen;
    seen.reserve(sequence.size());
    for (std::size_t i = sequence.size(); i-- > 0;) {
      is_last[i] = seen.insert(sequence[i].first).second ? 1 : 0;
    }
    cache.warm_bulk(
        lru_resident_suffix(sequence, is_last, server.disk_bytes),
        lru_resident_suffix(sequence, is_last, server.ram_bytes));
  }
  return archive;
}

}  // namespace vstream::engine
