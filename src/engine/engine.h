// The layered simulation engine: one entry point for every full run.
//
// Layering (each layer only sees the one below):
//
//   run_simulation()          build world, admit, shard, merge
//     ShardedRunner           deterministic partition + canonical merge
//       Shard                 one worker's replica stack (fleet, queue, ...)
//         SessionRuntime      one session's chunk-by-chunk state machine
//
// Determinism guarantee: for a fixed (scenario, RunOptions) the returned
// dataset, ground truth and server stats are bit-identical for ANY shard
// count AND any physical thread count.  Admission is single-threaded
// (one master-RNG draw order), every session runs on its own RNG
// substream against session-isolated server state plus a shared
// immutable warm archive, fault epochs are pure functions of simulated
// time and are replayed identically inside every shard, and the merge
// re-orders all record streams into canonical session-id order.  Shards
// define the partition; threads (the work-stealing runtime's pool size)
// define the concurrency — both change wall-clock time only.
#pragma once

#include <cstddef>
#include <memory>
#include <unordered_set>
#include <vector>

#include "cdn/overload.h"
#include "engine/ground_truth.h"
#include "engine/shard.h"
#include "faults/fault_schedule.h"
#include "telemetry/collector.h"
#include "telemetry/join.h"
#include "telemetry/proxy_filter.h"
#include "telemetry/spill_format.h"
#include "workload/scenario.h"

namespace vstream::engine {

struct RunOptions {
  /// Logical shard count — the determinism partition; 0 resolves via
  /// resolve_shard_count() (VSTREAM_SHARDS environment variable, else
  /// runtime::kDefaultLogicalShards).  Never changes results.
  std::size_t shards = 0;
  /// Physical worker threads executing the shards' work on the
  /// work-stealing runtime; 0 resolves via
  /// runtime::resolve_thread_count() (VSTREAM_THREADS environment
  /// variable, else hardware concurrency).  Never changes results —
  /// only wall-clock time.
  std::size_t threads = 0;
  /// Pre-populate caches to steady state (see build_warm_archive).
  bool warm_caches = true;
  double disk_fill = 0.92;
  bool universal_head = false;
  /// Fault epochs to replay during the run (empty: no injection).  Recorded
  /// in ground_truth.injected_faults.
  faults::FaultSchedule faults;
  /// Prefixes with known persistent problems (§4.2-1 a-priori ABR hints).
  std::unordered_set<net::Prefix24> bad_prefixes;
  /// Non-empty: stream telemetry to per-shard spill files in this
  /// directory (created if missing) instead of materializing the Dataset
  /// — RunResult.dataset comes back empty and RunResult.spill holds the
  /// file set.  Empty: the VSTREAM_TELEMETRY_SPILL environment variable
  /// (a non-empty directory path; set-but-empty throws) decides, else
  /// classic in-memory telemetry.
  std::string telemetry_spill_dir;
  /// Spill file format version (2 or 3); 0 resolves via
  /// telemetry::resolve_spill_format (VSTREAM_SPILL_FORMAT, else v3).
  /// Never changes results — only the bytes in the spill files.
  std::uint32_t spill_format = 0;
  /// Non-empty: crash-safe execution — run in checkpointed batches and
  /// write per-shard shard-<i>.vckpt sidecars to this directory (created
  /// if missing).  Checkpointing implies spill mode; when no spill dir is
  /// configured the checkpoint directory doubles as the spill directory.
  /// Empty: the VSTREAM_CHECKPOINT environment variable (same strict
  /// contract as the spill knob) decides, else no checkpointing.
  std::string checkpoint_dir;
  /// Resume from the sidecars in the checkpoint directory.  Missing or
  /// corrupt sidecars restart their shard from zero; sidecars from a
  /// different run configuration throw.  Requires checkpointing.
  bool resume = false;
  /// Sessions per shard between checkpoints.  0: the
  /// VSTREAM_CHECKPOINT_INTERVAL environment variable (strictly positive
  /// integer), else 1000.
  std::size_t checkpoint_interval = 0;
  /// Test/chaos hook: stop every shard after this many committed batches
  /// (RunResult.completed turns false; a resume finishes the run).
  std::size_t stop_after_checkpoints = 0;
};

/// A completed run: merged telemetry plus the world it was measured in.
struct RunResult {
  workload::Scenario scenario;
  /// Kept alive for downstream consumers (chunk duration, video metadata).
  std::shared_ptr<const workload::VideoCatalog> catalog;
  /// Empty when spilled() — the records live in `spill` instead.
  telemetry::Dataset dataset;
  GroundTruth ground_truth;
  /// Per-server serve counters, indexed pop * servers_per_pop + server.
  std::vector<cdn::ServerStats> server_stats;
  /// Logical shards the run was partitioned into.
  std::size_t shard_count = 0;
  /// Physical worker threads that executed it.
  std::size_t thread_count = 0;
  /// Spill mode only: the per-shard spill files, in shard order.
  /// spill.open() streams the run's sessions in canonical order;
  /// spill.load() materializes the canonical Dataset.
  telemetry::SpillSet spill;
  /// False only when a checkpointed run stopped early
  /// (RunOptions.stop_after_checkpoints): the spill/checkpoint files hold
  /// a committed prefix; run again with resume=true to finish.
  bool completed = true;
  /// True when checkpoint sidecar writes failed mid-run and the run
  /// degraded to checkpoint-free execution: results are complete and
  /// correct, but a crash would resume from the last *good* sidecar
  /// (warned once on stderr when it happened).
  bool checkpoints_degraded = false;

  bool spilled() const { return !spill.empty(); }
};

/// A run plus the paper's §3 preprocessing (proxy filter + two-sided join).
/// `joined` and `proxies` point into `run.dataset`; the struct is movable
/// (element pointers survive vector moves) but must be kept alive while
/// the join is in use.
struct AnalyzedRun {
  RunResult run;
  telemetry::ProxyFilterResult proxies;
  telemetry::JoinedDataset joined;
};

/// Resolve the effective *logical* shard count: `requested` if nonzero,
/// else the VSTREAM_SHARDS environment variable (must parse as a
/// positive integer; anything else throws std::runtime_error), else
/// runtime::kDefaultLogicalShards — a fixed constant, deliberately NOT
/// hardware concurrency: the partition defines determinism and batch
/// granularity, the physical pool (resolve_thread_count) tracks the
/// hardware.
std::size_t resolve_shard_count(std::size_t requested = 0);

/// Strictly parse environment variable `name` as a positive integer.
/// Forwarder for sim::positive_env (src/sim/env_util.h), kept for source
/// compatibility: unset returns `fallback`; set but invalid throws
/// std::runtime_error naming the variable — never a silent fallback.
std::size_t positive_env(const char* name, std::size_t fallback);

/// Same contract for a strictly positive real number (the overload knobs).
/// Forwarder for sim::positive_env_double.
double positive_env_double(const char* name, double fallback);

/// Apply the overload-protection environment knobs on top of `base`:
///   VSTREAM_BREAKER_THRESHOLD  breaker latency threshold, milliseconds
///   VSTREAM_RETRY_BUDGET       retry budget earn rate, percent of requests
///   VSTREAM_SHED_WATERMARK     shed watermark, percent of nominal capacity
/// Each must parse as a strictly positive number or the run refuses to
/// start (std::runtime_error naming the variable).
cdn::OverloadConfig resolve_overload_env(cdn::OverloadConfig base);

/// Build the world for `scenario`, admit all sessions, execute them across
/// the resolved shard count, and return the canonically merged result.
RunResult run_simulation(const workload::Scenario& scenario,
                         RunOptions options = {});

/// run_simulation() plus proxy detection and the player/CDN join — the
/// shared preamble of every figure bench and analysis tool.
AnalyzedRun run_and_analyze(const workload::Scenario& scenario,
                            RunOptions options = {});

}  // namespace vstream::engine
