#include "engine/replay.h"

#include <algorithm>
#include <span>
#include <utility>

#include "engine/shard.h"
#include "workload/session_generator.h"

namespace vstream::engine {

ReplayContext::ReplayContext(const workload::Scenario& scenario,
                             RunOptions options)
    : scenario_(scenario),
      warm_(scenario.fleet),
      faults_(std::move(options.faults)),
      bad_prefixes_(std::move(options.bad_prefixes)) {
  // Mirror run_simulation()'s world construction exactly — same overload
  // resolution, same master-RNG consumption order — so the admitted specs
  // and RNG substreams are the ones the original run executed.
  scenario_.fleet.server.overload =
      resolve_overload_env(scenario_.fleet.server.overload);

  sim::Rng rng(scenario_.seed);
  catalog_ =
      std::make_shared<workload::VideoCatalog>(scenario_.catalog, rng);
  population_ =
      std::make_unique<workload::Population>(scenario_.population, rng);
  workload::SessionGenerator generator(scenario_.sessions, *catalog_,
                                       *population_);
  const cdn::Fleet prototype(scenario_.fleet, catalog_->size());

  if (options.warm_caches) {
    warm_ = build_warm_archive(prototype, *catalog_, options.disk_fill,
                               options.universal_head);
  }
  admitted_ = admit_sessions(scenario_, generator, rng);
}

std::optional<ReplayedSession> ReplayContext::replay_session(
    std::uint64_t session_id, const cdn::IdealizationPolicy& policy) const {
  // Admitted ids are ascending, so the session is a binary search away.
  const auto it = std::lower_bound(
      admitted_.begin(), admitted_.end(), session_id,
      [](const AdmittedSession& session, std::uint64_t id) {
        return session.spec.session_id < id;
      });
  if (it == admitted_.end() || it->spec.session_id != session_id) {
    return std::nullopt;
  }

  // A one-session span through a private shard: session isolation makes
  // this identical to the session's slice of the full run (the property
  // the determinism suite pins), and makes concurrent replays share
  // nothing mutable.
  Shard shard(scenario_, *catalog_, warm_,
              faults_.empty() ? nullptr : &faults_,
              bad_prefixes_.empty() ? nullptr : &bad_prefixes_,
              /*sink=*/nullptr,
              policy.target == cdn::IdealizedSubsystem::kNone ? nullptr
                                                              : &policy);
  ShardResult result = shard.run(std::span(&*it, 1));

  ReplayedSession replayed;
  replayed.completed = result.ground_truth.failed_sessions == 0;
  replayed.dataset = std::move(result.dataset);

  // Same join + metric pass as the analysis tools, proxy filter off: a
  // replay always wants its session's QoE, proxied or not.
  const telemetry::JoinedDataset joined =
      telemetry::JoinedDataset::build(replayed.dataset);
  if (!joined.sessions().empty()) {
    replayed.qoe = analysis::session_qoe(joined.sessions().front());
  }
  return replayed;
}

}  // namespace vstream::engine
