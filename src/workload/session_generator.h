// Session generation: who watches what, when, for how long.
#pragma once

#include <cstdint>

#include "workload/catalog.h"
#include "workload/population.h"

namespace vstream::workload {

struct SessionGeneratorConfig {
  /// Mean session inter-arrival time (ms); exponential arrivals.
  double mean_interarrival_ms = 40.0;
  /// Probability the viewer abandons before the video ends; if so the
  /// watched fraction is uniform.  (The paper measures per-chunk QoE, so
  /// realistic partial viewing keeps session-length CDFs honest, Fig. 11a.)
  double abandon_probability = 0.55;
};

struct SessionSpec {
  std::uint64_t session_id = 0;
  std::uint32_t video_id = 0;
  std::size_t video_rank = 0;   ///< 1-based popularity rank
  std::uint32_t chunk_count = 0; ///< chunks the viewer will actually fetch
  double video_duration_s = 0.0;
  ClientProfile client;
  double start_time_ms = 0.0;  ///< arrival time on the fleet-wide clock
};

class SessionGenerator {
 public:
  SessionGenerator(SessionGeneratorConfig config, const VideoCatalog& catalog,
                   const Population& population)
      : config_(config), catalog_(&catalog), population_(&population) {}

  SessionSpec next(sim::Rng& rng);

  const SessionGeneratorConfig& config() const { return config_; }

 private:
  SessionGeneratorConfig config_;
  const VideoCatalog* catalog_;
  const Population* population_;
  std::uint64_t next_session_id_ = 1;
  double clock_ms_ = 0.0;
};

}  // namespace vstream::workload
