#include "workload/scenario.h"

namespace vstream::workload {

Scenario paper_scenario() {
  Scenario s;

  // Catalog sized so the fleet's disks cover ~97% of requests at steady
  // state (paper: ~2% session-chunk miss rate, §4.1-2).
  s.catalog.video_count = 3'500;
  s.catalog.duration_median_s = 120.0;
  s.catalog.duration_sigma = 0.9;

  // Dense enough that /24 prefixes and (prefix, PoP) paths accumulate the
  // multiple sessions per epoch the §4.2 aggregations need.
  s.population.prefix_count = 300;

  s.sessions.mean_interarrival_ms = 40.0;

  s.fleet.pop_count = 4;
  s.fleet.servers_per_pop = 4;
  // Calibrated so ~65% of requests hit RAM, ~33% disk, ~2% miss (§4.1:
  // retry timer touches ~35% of chunks, session-chunk miss rate ~2%).
  s.fleet.server.ram_bytes = 32ull << 30;
  s.fleet.server.disk_bytes = 240ull << 30;

  // The paper's servers ran Linux with CUBIC (the kernel default since
  // 2.6.19).
  s.tcp.congestion_control = net::CongestionControl::kCubic;

  s.session_count = 4'000;
  return s;
}

Scenario test_scenario() {
  Scenario s = paper_scenario();
  s.session_count = 300;
  // Sized so each test server's disk still covers most of its assigned
  // catalog, as at paper scale.
  s.catalog.video_count = 400;
  s.population.prefix_count = 150;
  s.fleet.pop_count = 2;
  s.fleet.servers_per_pop = 2;
  s.fleet.server.ram_bytes = 2ull << 30;
  s.fleet.server.disk_bytes = 48ull << 30;
  return s;
}

}  // namespace vstream::workload
