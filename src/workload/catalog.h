// Video catalog: durations and popularity.
//
// §3 of the paper: all chunks carry six seconds of video; video lengths
// span two orders of magnitude (Fig. 3a, CCDF straight-ish on log-log);
// popularity is heavily skewed — the top 10% of videos receive ~66% of all
// playbacks (Fig. 3b).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/zipf.h"

namespace vstream::workload {

struct CatalogConfig {
  std::size_t video_count = 20'000;
  /// Zipf skew; <= 0 means "fit so that the top `head_fraction` of videos
  /// draw `head_share` of playbacks" (the paper's 10% -> 66%).
  double zipf_alpha = 0.0;
  double head_fraction = 0.10;
  double head_share = 0.66;

  /// Log-normal video durations, clamped to [min, max] (Fig. 3a spans
  /// ~10 s news clips to multi-hour events).
  double duration_median_s = 180.0;
  double duration_sigma = 1.1;
  double min_duration_s = 10.0;
  double max_duration_s = 10'800.0;

  double chunk_duration_s = 6.0;  ///< fixed per §3
};

struct VideoMeta {
  std::uint32_t id = 0;       ///< dense id; also the 0-based popularity index
  double duration_s = 0.0;
  std::uint32_t chunk_count = 0;
};

class VideoCatalog {
 public:
  VideoCatalog(const CatalogConfig& config, sim::Rng& rng);

  /// Draw a video id according to popularity.
  std::uint32_t sample_video(sim::Rng& rng) const;

  const VideoMeta& video(std::uint32_t id) const { return videos_.at(id); }

  /// 1-based popularity rank (1 = most popular).  Ids are assigned in
  /// popularity order, so this is id + 1.
  std::size_t rank_of(std::uint32_t id) const { return id + 1; }

  std::size_t size() const { return videos_.size(); }
  double chunk_duration_s() const { return config_.chunk_duration_s; }
  const sim::Zipf& popularity() const { return popularity_; }
  const CatalogConfig& config() const { return config_; }

 private:
  CatalogConfig config_;
  sim::Zipf popularity_;
  std::vector<VideoMeta> videos_;
};

}  // namespace vstream::workload
