#include "workload/catalog.h"

#include <algorithm>
#include <cmath>

namespace vstream::workload {

namespace {

double resolve_alpha(const CatalogConfig& config) {
  if (config.zipf_alpha > 0.0) return config.zipf_alpha;
  return sim::fit_zipf_alpha(config.video_count, config.head_fraction,
                             config.head_share);
}

}  // namespace

VideoCatalog::VideoCatalog(const CatalogConfig& config, sim::Rng& rng)
    : config_(config), popularity_(config.video_count, resolve_alpha(config)) {
  videos_.reserve(config.video_count);
  for (std::size_t i = 0; i < config.video_count; ++i) {
    VideoMeta meta;
    meta.id = static_cast<std::uint32_t>(i);
    meta.duration_s = std::clamp(
        rng.lognormal_median(config.duration_median_s, config.duration_sigma),
        config.min_duration_s, config.max_duration_s);
    meta.chunk_count = static_cast<std::uint32_t>(
        std::ceil(meta.duration_s / config.chunk_duration_s));
    videos_.push_back(meta);
  }
}

std::uint32_t VideoCatalog::sample_video(sim::Rng& rng) const {
  // Zipf ranks are 1-based; ids are the 0-based popularity order.
  return static_cast<std::uint32_t>(popularity_.sample(rng) - 1);
}

}  // namespace vstream::workload
