#include "workload/population.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace vstream::workload {

namespace {

constexpr std::array<const char*, 8> kResidentialIsps = {
    "ComNet Cable", "FiberLink", "MetroDSL",       "SunCast",
    "BlueWave",     "PrairieNet", "CoastalBroadband", "RiverTel"};

constexpr std::array<const char*, 5> kEnterprises = {
    "Enterprise#1", "Enterprise#2", "Enterprise#3", "Enterprise#4",
    "Enterprise#5"};

constexpr std::array<const char*, 6> kIntlCarriers = {
    "GlobalTransit", "EuroLink", "AsiaPacNet",
    "SouthernCross", "AtlanticWave", "AndesNet"};

}  // namespace

Population::Population(const PopulationConfig& config, sim::Rng& rng)
    : config_(config) {
  prefixes_.reserve(config.prefix_count);
  const auto us = net::us_cities();
  const auto world = net::world_cities();

  for (std::size_t i = 0; i < config.prefix_count; ++i) {
    PrefixProfile p;
    // Synthetic, collision-free /24s: 10.x.y.0/24 style but spread over a
    // wide space so prefix arithmetic is exercised realistically.
    p.prefix = net::prefix24_of(net::make_ip(
        static_cast<std::uint8_t>(20 + (i >> 14)),
        static_cast<std::uint8_t>((i >> 8) & 0x3F),
        static_cast<std::uint8_t>(i & 0xFF), 0));

    const bool in_us = rng.bernoulli(config.us_fraction);
    if (in_us) {
      const auto& city = us[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(us.size()) - 1))];
      p.city = city.name;
      p.country = city.country;
      // Scatter clients ~0.3 degrees around the metro centre.
      p.location = {city.location.lat_deg + rng.normal(0.0, 0.3),
                    city.location.lon_deg + rng.normal(0.0, 0.3)};
      if (rng.bernoulli(config.enterprise_fraction)) {
        p.access = net::AccessType::kEnterprise;
        p.org = kEnterprises[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(kEnterprises.size()) - 1))];
      } else {
        p.access = net::AccessType::kResidential;
        p.org = kResidentialIsps[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(kResidentialIsps.size()) - 1))];
      }
    } else {
      const auto& city = world[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(world.size()) - 1))];
      p.city = city.name;
      p.country = city.country;
      p.location = {city.location.lat_deg + rng.normal(0.0, 0.3),
                    city.location.lon_deg + rng.normal(0.0, 0.3)};
      p.access = net::AccessType::kInternational;
      p.org = kIntlCarriers[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(kIntlCarriers.size()) - 1))];
    }
    p.bandwidth_kbps = std::max(
        config.min_bandwidth_kbps,
        rng.lognormal_median(config.bandwidth_median_kbps,
                             config.bandwidth_sigma));
    // Heavy-tailed loss heterogeneity: median prefix ~1x, a small tail of
    // chronically lossy last miles at 10-100x.
    p.loss_multiplier = rng.pareto(0.5, 0.9);
    p.congestion_prone = rng.bernoulli(config.congestion_prone_fraction);
    prefixes_.push_back(std::move(p));
  }
}

client::UserAgent Population::sample_user_agent(sim::Rng& rng) const {
  using client::Browser;
  using client::Os;
  client::UserAgent ua;

  const double os_draw = rng.uniform01();
  if (os_draw < config_.windows_fraction) {
    ua.os = Os::kWindows;
  } else if (os_draw < config_.windows_fraction + config_.mac_fraction) {
    ua.os = Os::kMacOs;
  } else {
    ua.os = Os::kLinux;
  }

  // §3 browser shares; the ~2% "other" tail split across the unpopular
  // browsers the paper names in Fig. 22.
  static constexpr std::array<double, 9> weights = {
      0.43,   // Chrome
      0.37,   // Firefox
      0.11,   // IE
      0.02,   // Edge
      0.05,   // Safari
      0.008,  // Opera
      0.005,  // Yandex
      0.004,  // Vivaldi
      0.003,  // SeaMonkey
  };
  static constexpr std::array<Browser, 9> browsers = {
      Browser::kChrome, Browser::kFirefox,   Browser::kInternetExplorer,
      Browser::kEdge,   Browser::kSafari,    Browser::kOpera,
      Browser::kYandex, Browser::kVivaldi,   Browser::kSeaMonkey,
  };
  ua.browser = browsers[rng.discrete(weights)];

  // Platform coherence: Edge/IE only on Windows; Safari mostly on Mac but
  // a Windows remnant exists (and is exactly the pathological case of
  // Table 5 / Fig. 22).
  if (ua.os != Os::kWindows &&
      (ua.browser == Browser::kInternetExplorer || ua.browser == Browser::kEdge)) {
    ua.browser = Browser::kSafari;
  }
  if (ua.browser == Browser::kSafari && ua.os == Os::kWindows &&
      rng.bernoulli(0.7)) {
    ua.os = Os::kMacOs;  // most Safari sessions are Macs
  }
  return ua;
}

ClientProfile Population::sample(sim::Rng& rng) const {
  ClientProfile c;
  const auto& prefix = prefixes_[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(prefixes_.size()) - 1))];
  c.prefix = &prefix;
  c.ip = prefix.prefix |
         static_cast<net::IpV4>(rng.uniform_int(1, 254));
  c.ua = sample_user_agent(rng);
  c.gpu = rng.bernoulli(config_.gpu_fraction);
  c.visible = rng.bernoulli(config_.visible_fraction);
  c.cpu_load = std::min(
      0.98, rng.lognormal_median(config_.cpu_load_median, config_.cpu_load_sigma));
  c.behind_proxy = rng.bernoulli(config_.proxy_fraction);
  return c;
}

}  // namespace vstream::workload
