// Client population: /24 prefixes with geography, organization and access
// type, plus the per-session platform mix.
//
// §3: >93% of clients are in North America; sessions aggregate into /24
// prefixes for the persistent-problem analyses; the browser mix is 43%
// Chrome / 37% Firefox / 13% IE / 6% Safari / ~2% other and the OS mix is
// 88.5% Windows / 9.4% OS X.  §4.2 distinguishes residential ISPs,
// enterprises (high latency variability even near the CDN) and
// international clients (high base RTT).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "client/user_agent.h"
#include "net/geo.h"
#include "net/path_model.h"
#include "net/prefix.h"
#include "sim/rng.h"

namespace vstream::workload {

struct PopulationConfig {
  std::size_t prefix_count = 4'000;
  double us_fraction = 0.93;
  /// Among US prefixes, the share on enterprise paths (the rest are
  /// residential); international prefixes use the international profile.
  double enterprise_fraction = 0.12;

  /// Access capacity (kbps): log-normal around a broadband median.
  double bandwidth_median_kbps = 12'000.0;
  double bandwidth_sigma = 0.7;
  double min_bandwidth_kbps = 1'200.0;

  /// Client platform mix (§3).
  double windows_fraction = 0.885;
  double mac_fraction = 0.094;
  double gpu_fraction = 0.35;      ///< sessions with hardware rendering
  double visible_fraction = 0.95;  ///< player visible (not hidden tab)
  /// Background CPU load is Beta-ish: mostly light, occasionally pegged.
  double cpu_load_median = 0.25;
  double cpu_load_sigma = 0.8;

  /// Share of prefixes whose path suffers peak-hour congestion epochs.
  double congestion_prone_fraction = 0.45;

  /// Share of sessions behind an HTTP proxy (filtered in preprocessing;
  /// the paper keeps 77% of sessions after filtering, but most removals
  /// are mega-proxies detected by volume).
  double proxy_fraction = 0.03;
};

/// A /24 prefix and everything persistent about its clients.
struct PrefixProfile {
  net::Prefix24 prefix = 0;
  net::GeoPoint location;
  std::string city;
  std::string country;
  net::AccessType access = net::AccessType::kResidential;
  std::string org;  ///< ISP or enterprise name
  double bandwidth_kbps = 0.0;
  /// Multiplier on the access type's baseline random-loss rate; Pareto
  /// distributed — most prefixes are clean, a few are chronically lossy.
  double loss_multiplier = 1.0;
  /// Paths prone to peak-hour congestion: their sessions sometimes run
  /// during an epoch of heavily inflated latency (Fig. 10's 40% of paths
  /// with CV(srtt) > 1).
  bool congestion_prone = false;
};

/// A client drawn for one session.
struct ClientProfile {
  net::IpV4 ip = 0;
  const PrefixProfile* prefix = nullptr;  ///< owned by the Population
  client::UserAgent ua;
  bool gpu = false;
  bool visible = true;
  double cpu_load = 0.0;
  bool behind_proxy = false;
};

class Population {
 public:
  Population(const PopulationConfig& config, sim::Rng& rng);

  /// Draw a client for a new session (prefix uniform, platform per mix).
  ClientProfile sample(sim::Rng& rng) const;

  const std::vector<PrefixProfile>& prefixes() const { return prefixes_; }
  const PopulationConfig& config() const { return config_; }

 private:
  client::UserAgent sample_user_agent(sim::Rng& rng) const;

  PopulationConfig config_;
  std::vector<PrefixProfile> prefixes_;
};

}  // namespace vstream::workload
