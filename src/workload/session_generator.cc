#include "workload/session_generator.h"

#include <algorithm>
#include <cmath>

namespace vstream::workload {

SessionSpec SessionGenerator::next(sim::Rng& rng) {
  SessionSpec spec;
  spec.session_id = next_session_id_++;
  clock_ms_ += rng.exponential(config_.mean_interarrival_ms);
  spec.start_time_ms = clock_ms_;

  spec.video_id = catalog_->sample_video(rng);
  spec.video_rank = catalog_->rank_of(spec.video_id);
  const VideoMeta& meta = catalog_->video(spec.video_id);
  spec.video_duration_s = meta.duration_s;

  std::uint32_t chunks = meta.chunk_count;
  if (rng.bernoulli(config_.abandon_probability)) {
    const double fraction = rng.uniform(0.05, 1.0);
    chunks = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::ceil(fraction * meta.chunk_count)));
  }
  spec.chunk_count = chunks;

  spec.client = population_->sample(rng);
  return spec;
}

}  // namespace vstream::workload
