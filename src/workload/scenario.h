// Scenario: the complete configuration of one simulated deployment —
// catalog, client population, CDN fleet, transport, player — plus presets.
#pragma once

#include <cstdint>

#include "cdn/fleet.h"
#include "client/abr.h"
#include "sim/time.h"
#include "client/playback_buffer.h"
#include "net/tcp_model.h"
#include "workload/catalog.h"
#include "workload/population.h"
#include "workload/session_generator.h"

namespace vstream::workload {

/// Player-side failure recovery policy: per-chunk request timeouts with
/// capped exponential backoff, and failover to another server when a
/// request keeps dying.  Drives the recovery loop in core::Pipeline.
struct RecoveryPolicy {
  /// Client abandons a request whose first byte has not arrived by then.
  sim::Ms request_timeout_ms = 4'000.0;
  /// Re-issues after a timeout/error before the player gives up on the
  /// chunk (and the viewer on the session).  Total attempts = retries + 1.
  std::uint32_t max_retries = 4;
  /// Backoff before attempt k: base * factor^(k-1), capped, with uniform
  /// jitter in [0.5, 1.0] of that value.
  sim::Ms backoff_base_ms = 250.0;
  sim::Ms backoff_cap_ms = 4'000.0;
  double backoff_factor = 2.0;
  /// Fail over to another server after this many consecutive failed
  /// attempts on the current one (a down server fails over immediately).
  std::uint32_t failover_after_attempts = 1;
};

struct Scenario {
  std::uint64_t seed = 20160516;  ///< the paper's arXiv date, why not
  std::size_t session_count = 4'000;

  CatalogConfig catalog;
  PopulationConfig population;
  SessionGeneratorConfig sessions;
  cdn::FleetConfig fleet;
  cdn::RoutingPolicy routing = cdn::RoutingPolicy::kCacheFocused;
  net::TcpConfig tcp;
  client::PlaybackBufferConfig buffer;
  client::AbrKind abr = client::AbrKind::kHybrid;
  RecoveryPolicy recovery;

  /// tcp_info sampling cadence (500 ms in production, §2.1).
  double tcp_sample_interval_ms = 500.0;

  /// Per-session receiver window draw (log-normal, in segments).  2015-era
  /// client OSes autotuned receive buffers to modest sizes; sessions whose
  /// rwnd sits below the path pipe never overflow the bottleneck and stay
  /// loss-free (§4.2-3: ~40% of sessions see no loss).  0 disables.
  double rwnd_median_segments = 150.0;
  double rwnd_sigma = 0.7;

  /// Diurnal/peak-hour congestion: on congestion-prone prefixes (a
  /// population property), each session runs during a congestion epoch
  /// with this probability and its base RTT carries a large extra offset
  /// for the whole session.  Because clean sessions of the same prefix
  /// stay fast, this drives the cross-session path variability of Fig. 10
  /// without making prefixes *persistently* slow (Fig. 9 stays
  /// distance/enterprise-driven).
  double congestion_epoch_probability = 0.35;
  double congestion_offset_median_ms = 150.0;
  double congestion_offset_sigma = 0.7;

  /// QoE-sensitive engagement (Krishnan & Sitaraman [25], Dobrian et al.
  /// [14], which the paper's QoE framing builds on): after each
  /// re-buffering event the viewer abandons the session with this
  /// probability.  0 (default) keeps watch time independent of QoE, as the
  /// calibration scenarios assume.
  double stall_abandonment_probability = 0.0;

  /// §4.3-1 recommendation (2): rate-based ABRs relying on client-side
  /// measurements "should exclude these outliers in their
  /// throughput/latency estimations."  When set, a chunk whose
  /// instantaneous throughput exceeds 4x the smoothed estimate is not fed
  /// into the ABR's EWMA (it is almost certainly stack-buffered delivery,
  /// not network speed).
  bool abr_filters_throughput_outliers = false;
};

/// Default scenario calibrated to §3/§4: Zipf head 10% -> 66%, ~2% session
/// chunk miss rate, ~35% of chunks behind the retry timer, enterprise
/// jitter, platform mixes, etc.
Scenario paper_scenario();

/// Smaller/faster variant for unit and integration tests.
Scenario test_scenario();

}  // namespace vstream::workload
