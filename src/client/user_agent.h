// Client platform identity: operating system, browser and rendering
// capabilities.
//
// §3 of the paper gives the population mix (43% Chrome, 37% Firefox, 13%
// IE, 6% Safari, ~2% other; 88.5% Windows, 9.38% OS X) and §4.3/§4.4 tie
// download-stack latency and rendering quality to the (OS, browser) pair:
// browsers with in-process Flash (Chrome) or native HLS (Safari on OS X)
// outperform out-of-process setups; unpopular browsers (Yandex, Vivaldi,
// Opera, SeaMonkey) and Safari-on-Windows do worst.
#pragma once

#include <cstdint>
#include <string>

namespace vstream::client {

enum class Os : std::uint8_t { kWindows, kMacOs, kLinux };

enum class Browser : std::uint8_t {
  kChrome,
  kFirefox,
  kInternetExplorer,
  kEdge,
  kSafari,
  kOpera,
  kYandex,
  kVivaldi,
  kSeaMonkey,
};

const char* to_string(Os os);
const char* to_string(Browser browser);

struct UserAgent {
  Os os = Os::kWindows;
  Browser browser = Browser::kChrome;

  friend bool operator==(const UserAgent&, const UserAgent&) = default;
};

/// "Other" = the long tail the paper groups together (~2% of sessions).
bool is_popular(Browser browser);

/// Mainstream label used by the Fig. 21/22 benches, e.g. "Chrome" or
/// "Other"; platform given separately.
std::string browser_label(Browser browser);

/// User-agent header string (used by the proxy filter, which compares the
/// UA seen in HTTP requests against the one in client-side beacons).
std::string user_agent_string(const UserAgent& ua);

}  // namespace vstream::client
