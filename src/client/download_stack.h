// Client download-stack model (OS -> browser -> Flash runtime -> player).
//
// §4.3: bytes traversing the client stack can be delayed by buffered
// delivery.  Three observable behaviours are modelled:
//
//   1. transient buffered delivery ("DS anomaly"): a chunk's bytes are held
//      in the stack and delivered at once, inflating D_FB while the bytes
//      already sit at the client — so D_LB collapses and the instantaneous
//      throughput spikes (Fig. 17; detected by Eq. 4; 0.32% of chunks),
//   2. persistent per-platform latency: some (OS, browser) pairs add large
//      DS latency on many chunks (Table 5: Safari on Windows ~1 s mean),
//   3. a first-chunk penalty: progress-event listener/data-path setup adds
//      latency to the first chunk of a session (Fig. 18; median D_FB
//      ~300 ms higher).
#pragma once

#include "client/user_agent.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace vstream::client {

/// Per-platform download-stack behaviour.
struct DownloadStackProfile {
  /// Baseline per-chunk stack latency (always present): the Flash
  /// progress-event delivery hop costs tens of milliseconds per chunk.
  sim::Ms base_median_ms = 45.0;
  double base_sigma = 0.6;

  /// Probability a chunk incurs an *extra* stack delay, and its size.
  /// The paper finds 17.6% of chunks have non-zero DS latency overall.
  double extra_probability = 0.15;
  sim::Ms extra_median_ms = 120.0;
  double extra_sigma = 0.9;

  /// Transient buffered-delivery anomaly (Eq. 4 target): bytes held for
  /// hold_median_ms then delivered at once.
  double anomaly_probability = 0.003;
  sim::Ms anomaly_hold_median_ms = 1'200.0;
  double anomaly_hold_sigma = 0.5;

  /// First-chunk data-path setup cost (progress-event registration).
  sim::Ms first_chunk_median_ms = 300.0;
  double first_chunk_sigma = 0.6;
};

/// Profile for a platform, following Table 5's ordering: Safari off-Mac is
/// pathological; unpopular Windows browsers are bad; mainstream pairs are
/// mild.
DownloadStackProfile profile_for(const UserAgent& ua);

/// What the stack did to one chunk.
struct DownloadStackSample {
  /// Stack latency added to D_FB (beyond network/server), excluding holds.
  sim::Ms ds_ms = 0.0;
  /// If true, the stack held the whole chunk and released it at once:
  /// D_FB additionally grows by hold_ms and the player-observed D_LB
  /// collapses to near zero (instantaneous delivery).
  bool buffered_anomaly = false;
  sim::Ms hold_ms = 0.0;
};

class DownloadStack {
 public:
  explicit DownloadStack(DownloadStackProfile profile) : profile_(profile) {}
  DownloadStack(const UserAgent& ua) : profile_(profile_for(ua)) {}

  DownloadStackSample sample(std::uint32_t chunk_index, sim::Rng& rng) const;

  const DownloadStackProfile& profile() const { return profile_; }

 private:
  DownloadStackProfile profile_;
};

}  // namespace vstream::client
