#include "client/user_agent.h"

namespace vstream::client {

const char* to_string(Os os) {
  switch (os) {
    case Os::kWindows: return "Windows";
    case Os::kMacOs: return "Mac";
    case Os::kLinux: return "Linux";
  }
  return "unknown";
}

const char* to_string(Browser browser) {
  switch (browser) {
    case Browser::kChrome: return "Chrome";
    case Browser::kFirefox: return "Firefox";
    case Browser::kInternetExplorer: return "IE";
    case Browser::kEdge: return "Edge";
    case Browser::kSafari: return "Safari";
    case Browser::kOpera: return "Opera";
    case Browser::kYandex: return "Yandex";
    case Browser::kVivaldi: return "Vivaldi";
    case Browser::kSeaMonkey: return "SeaMonkey";
  }
  return "unknown";
}

bool is_popular(Browser browser) {
  switch (browser) {
    case Browser::kChrome:
    case Browser::kFirefox:
    case Browser::kInternetExplorer:
    case Browser::kEdge:
    case Browser::kSafari:
      return true;
    default:
      return false;
  }
}

std::string browser_label(Browser browser) {
  return is_popular(browser) ? to_string(browser) : "Other";
}

std::string user_agent_string(const UserAgent& ua) {
  return std::string(to_string(ua.browser)) + "/" + to_string(ua.os);
}

}  // namespace vstream::client
