#include "client/rendering.h"

#include <algorithm>
#include <cmath>

namespace vstream::client {

double rendering_efficiency(const UserAgent& ua) {
  // Fig. 21/22: in-process Flash (Chrome) and native HLS (Safari on Mac)
  // lead; out-of-process Flash (Firefox protected mode) trails; Safari off
  // Mac and the unpopular tail (Yandex, Vivaldi, Opera, SeaMonkey) do worst.
  if (ua.browser == Browser::kSafari && ua.os == Os::kMacOs) return 1.0;
  if (ua.browser == Browser::kSafari) return 0.35;
  switch (ua.browser) {
    case Browser::kChrome: return 0.95;
    case Browser::kEdge: return 0.85;
    case Browser::kInternetExplorer: return 0.80;
    case Browser::kFirefox: return 0.75;
    case Browser::kOpera: return 0.45;
    case Browser::kVivaldi: return 0.40;
    case Browser::kYandex: return 0.35;
    case Browser::kSeaMonkey: return 0.40;
    default: return 0.5;
  }
}

RenderResult RenderingPath::render_chunk(double chunk_duration_s,
                                         std::uint32_t bitrate_kbps,
                                         double download_rate,
                                         double buffered_s,
                                         sim::Rng& rng) const {
  RenderResult result;
  result.total_frames = static_cast<std::uint32_t>(
      std::lround(chunk_duration_s * config_.encoded_fps));
  if (result.total_frames == 0) return result;

  double drop_fraction = 0.0;

  if (!config_.visible) {
    // Hidden tab / minimized window: frames dropped on purpose (§2.1).
    drop_fraction = rng.uniform(0.6, 0.95);
  } else if (config_.gpu) {
    // Hardware rendering: near-zero drops regardless of CPU load (Fig. 20,
    // first bar).
    drop_fraction = std::max(0.0, rng.normal(0.002, 0.002));
  } else {
    // --- arrival-limited term (Fig. 19) ---
    // Below 1 s/s the decoder starves outright; between 1 and 1.5 s/s there
    // is not enough slack for demux+decode; past 1.5 s/s arrival no longer
    // matters.  A full buffer hides slow arrival.
    double arrival_term = 0.0;
    if (download_rate < 1.5) {
      arrival_term = std::min(1.0, (1.5 - download_rate) / 1.5) * 0.55;
      // A deep buffer hides slow arrival, but only partially: demux/decode
      // still runs behind when frames trickle in (§4.4-1's 5.7% of chunks
      // are the lucky sheltered ones, not the rule).
      const double shelter = std::min(1.0, buffered_s / 20.0);
      arrival_term *= (1.0 - 0.6 * shelter);
    }

    // --- CPU-limited term (Fig. 20) ---
    // Decode work scales with bitrate; capacity with idle CPU and the
    // browser's path efficiency.  The OS scheduler still grants the
    // renderer a share on a loaded machine, so capacity floors well above
    // zero — the paper's controlled experiment tops out near ~10% drops
    // even with every core busy.
    const double demand =
        (static_cast<double>(bitrate_kbps) / 3000.0) * (0.20 / efficiency_);
    const double capacity = std::max(0.12, 1.0 - 0.85 * config_.cpu_load);
    double cpu_term = 0.0;
    if (demand > capacity) {
      cpu_term = std::min(1.0, (demand - capacity) / demand);
    }
    // Render-path overhead (jank, event-loop stalls) independent of CPU
    // load: negligible for efficient browsers, dominant for the unpopular
    // tail (Fig. 22's 15-40%).
    const double base = 0.01 / efficiency_ +
                        0.35 * (1.0 - efficiency_) * (1.0 - efficiency_);

    drop_fraction = std::clamp(
        base + arrival_term + cpu_term + rng.normal(0.0, 0.01), 0.0, 1.0);
  }

  result.dropped_frames = static_cast<std::uint32_t>(
      std::lround(drop_fraction * result.total_frames));
  result.dropped_frames = std::min(result.dropped_frames, result.total_frames);
  result.avg_fps = config_.encoded_fps *
                   (1.0 - result.dropped_fraction());
  return result;
}

}  // namespace vstream::client
