#include "client/abr.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace vstream::client {

namespace {

// A typical 2015-era VoD ladder (kbps).
constexpr std::array<std::uint32_t, 6> kLadder = {300,  700,  1500,
                                                  2500, 4000, 6000};

std::uint32_t highest_not_above(std::span<const std::uint32_t> ladder,
                                double kbps) {
  std::uint32_t pick = ladder.front();
  for (const std::uint32_t rung : ladder) {
    if (static_cast<double>(rung) <= kbps) pick = rung;
  }
  return pick;
}

}  // namespace

std::span<const std::uint32_t> default_bitrate_ladder() { return kLadder; }

std::uint32_t FixedAbr::choose(const AbrContext& /*context*/,
                               std::span<const std::uint32_t> ladder) {
  if (ladder.empty()) throw std::invalid_argument("ABR: empty ladder");
  return highest_not_above(ladder, static_cast<double>(bitrate_));
}

std::uint32_t RateBasedAbr::choose(const AbrContext& context,
                                   std::span<const std::uint32_t> ladder) {
  if (ladder.empty()) throw std::invalid_argument("ABR: empty ladder");
  if (context.smoothed_throughput_kbps <= 0.0) {
    // No sample yet: start at the conservative second rung (fast startup),
    // or the floor when the client's prefix is known to have persistent
    // network problems (§4.2-1 take-away).
    if (context.known_bad_prefix) return ladder[0];
    return ladder.size() >= 2 ? ladder[1] : ladder[0];
  }
  return highest_not_above(ladder,
                           safety_ * context.smoothed_throughput_kbps);
}

std::uint32_t BufferBasedAbr::choose(const AbrContext& context,
                                     std::span<const std::uint32_t> ladder) {
  if (ladder.empty()) throw std::invalid_argument("ABR: empty ladder");
  if (context.buffer_s <= reservoir_s_) return ladder.front();
  if (context.buffer_s >= cushion_s_) return ladder.back();
  const double fraction =
      (context.buffer_s - reservoir_s_) / (cushion_s_ - reservoir_s_);
  const auto index = static_cast<std::size_t>(
      fraction * static_cast<double>(ladder.size() - 1));
  return ladder[std::min(index, ladder.size() - 1)];
}

double MpcAbr::plan_utility(std::span<const std::uint32_t> ladder,
                            double throughput_kbps, double buffer_s,
                            std::uint32_t prev_bitrate, std::size_t depth,
                            std::uint32_t* first_choice) const {
  if (depth == 0) return 0.0;
  double best = -1e18;
  std::uint32_t best_rung = ladder.front();
  for (const std::uint32_t rung : ladder) {
    // Predicted download time of one chunk at this rung.
    const double download_s =
        static_cast<double>(rung) * config_.chunk_duration_s /
        std::max(1.0, config_.throughput_safety * throughput_kbps);
    const double stalled_s = std::max(0.0, download_s - buffer_s);
    const double next_buffer =
        std::max(0.0, buffer_s - download_s) + config_.chunk_duration_s;

    double utility = static_cast<double>(rung) -
                     config_.rebuffer_penalty * stalled_s -
                     config_.switch_penalty *
                         std::abs(static_cast<double>(rung) -
                                  static_cast<double>(
                                      prev_bitrate == 0 ? rung : prev_bitrate));
    utility += plan_utility(ladder, throughput_kbps, next_buffer, rung,
                            depth - 1, nullptr);
    if (utility > best) {
      best = utility;
      best_rung = rung;
    }
  }
  if (first_choice != nullptr) *first_choice = best_rung;
  return best;
}

std::uint32_t MpcAbr::choose(const AbrContext& context,
                             std::span<const std::uint32_t> ladder) {
  if (ladder.empty()) throw std::invalid_argument("ABR: empty ladder");
  if (context.smoothed_throughput_kbps <= 0.0) {
    // No evidence yet: same cold start as the rate-based family.
    if (context.known_bad_prefix) return ladder[0];
    return ladder.size() >= 2 ? ladder[1] : ladder[0];
  }
  std::uint32_t first = ladder.front();
  plan_utility(ladder, context.smoothed_throughput_kbps, context.buffer_s,
               context.last_bitrate_kbps, config_.horizon, &first);
  return first;
}

std::uint32_t HybridAbr::choose(const AbrContext& context,
                                std::span<const std::uint32_t> ladder) {
  const std::uint32_t by_rate = rate_.choose(context, ladder);
  const std::uint32_t by_buffer = buffer_.choose(context, ladder);
  // Deep buffer may raise quality above the rate pick — typically one rung,
  // since the cap is 2.5x the rate estimate and rungs roughly double — and
  // the result must stay on the ladder.
  const std::uint32_t candidate = std::max(by_rate, by_buffer);
  const double cap = static_cast<double>(by_rate) * 2.5;
  if (static_cast<double>(candidate) <= cap) return candidate;
  return std::max(by_rate, highest_not_above(ladder, cap));
}

std::unique_ptr<AbrAlgorithm> make_abr(AbrKind kind,
                                       std::uint32_t fixed_bitrate_kbps) {
  switch (kind) {
    case AbrKind::kFixed:
      return std::make_unique<FixedAbr>(
          fixed_bitrate_kbps != 0 ? fixed_bitrate_kbps
                                  : default_bitrate_ladder()[2]);
    case AbrKind::kRateBased: return std::make_unique<RateBasedAbr>();
    case AbrKind::kBufferBased: return std::make_unique<BufferBasedAbr>();
    case AbrKind::kHybrid: return std::make_unique<HybridAbr>();
    case AbrKind::kMpc: return std::make_unique<MpcAbr>();
  }
  throw std::invalid_argument("make_abr: unknown kind");
}

const char* to_string(AbrKind kind) {
  switch (kind) {
    case AbrKind::kFixed: return "fixed";
    case AbrKind::kRateBased: return "rate-based";
    case AbrKind::kBufferBased: return "buffer-based";
    case AbrKind::kHybrid: return "hybrid";
    case AbrKind::kMpc: return "mpc";
  }
  return "unknown";
}

}  // namespace vstream::client
