// Playback buffer and QoE accounting.
//
// The player fills the buffer as chunks arrive and drains it in real time
// once playback starts.  Startup delay, re-buffering event counts and
// re-buffering durations (the QoE metrics prior work ties to engagement,
// §4) fall out of this bookkeeping.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace vstream::client {

struct PlaybackBufferConfig {
  /// Seconds of video required before playback starts (startup threshold)
  /// and before it resumes after a stall.
  double startup_threshold_s = 2.0;
  double resume_threshold_s = 2.0;
  /// Target ceiling: the player stops requesting ahead of this level
  /// (the paper's case study shows buffers building to ~30 s, §4.2-3).
  double max_buffer_s = 30.0;
};

/// What happened at the player between two instants.
struct DrainResult {
  sim::Ms stalled_ms = 0.0;       ///< wall time spent stalled (rebuffering)
  std::uint32_t stall_events = 0; ///< number of *new* stalls entered
};

class PlaybackBuffer {
 public:
  explicit PlaybackBuffer(PlaybackBufferConfig config) : config_(config) {}
  PlaybackBuffer() : PlaybackBuffer(PlaybackBufferConfig{}) {}

  /// Advance wall time by `wall_ms` with no data arriving; drains the
  /// buffer if playing, accumulates stall time if not.
  DrainResult advance(sim::Ms wall_ms);

  /// A whole chunk of `seconds` of video arrived (chunks become playable
  /// when complete; sub-chunk delivery is not visible to Flash players,
  /// §2.1).
  void add_chunk(double seconds);

  double level_s() const { return level_s_; }
  bool playing() const { return playing_; }
  bool started() const { return started_; }
  /// Wall time of playback start (startup delay), set on first play.
  sim::Ms startup_ms() const { return startup_ms_; }

  /// Seconds of video the player may still request without exceeding the
  /// buffer ceiling; callers pause requesting when this hits zero.
  double headroom_s() const;

  const PlaybackBufferConfig& config() const { return config_; }

 private:
  PlaybackBufferConfig config_;
  double level_s_ = 0.0;
  bool playing_ = false;
  bool started_ = false;
  sim::Ms clock_ms_ = 0.0;
  sim::Ms startup_ms_ = 0.0;
};

}  // namespace vstream::client
