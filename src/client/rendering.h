// Client rendering path: demux -> decode -> render.
//
// §4.4: without GPU offload the CPU decodes and renders; frames are dropped
// when (a) data arrives too slowly — a chunk download rate of at least
// 1.5 seconds of video per second of wall time is needed for clean playback
// (Fig. 19), (b) the CPU is loaded (Fig. 20), or (c) the browser's rendering
// path is inefficient (Figs. 21-22).  Hidden/minimized players deliberately
// drop frames to save CPU.
#pragma once

#include <cstdint>

#include "client/user_agent.h"
#include "sim/rng.h"

namespace vstream::client {

struct RenderConfig {
  bool gpu = false;          ///< hardware rendering available and used
  double cpu_load = 0.0;     ///< background CPU utilization in [0, 1]
  bool visible = true;       ///< player tab visible (vis of Table 2)
  double encoded_fps = 30.0;
};

/// Relative software-decode efficiency of the browser's rendering path in
/// (0, 1]; 1.0 = best in class.
double rendering_efficiency(const UserAgent& ua);

/// Outcome of rendering one chunk.
struct RenderResult {
  std::uint32_t total_frames = 0;
  std::uint32_t dropped_frames = 0;
  double avg_fps = 0.0;

  double dropped_fraction() const {
    return total_frames == 0
               ? 0.0
               : static_cast<double>(dropped_frames) / total_frames;
  }
};

class RenderingPath {
 public:
  RenderingPath(RenderConfig config, const UserAgent& ua)
      : config_(config), efficiency_(rendering_efficiency(ua)) {}

  /// Render one chunk of `chunk_duration_s` seconds encoded at
  /// `bitrate_kbps`, downloaded at `download_rate` seconds-of-video per
  /// second (tau / (D_FB + D_LB)); `buffered_s` is the playback buffer
  /// level, which can hide slow arrival (§4.4-1).
  RenderResult render_chunk(double chunk_duration_s, std::uint32_t bitrate_kbps,
                            double download_rate, double buffered_s,
                            sim::Rng& rng) const;

  const RenderConfig& config() const { return config_; }
  double efficiency() const { return efficiency_; }

 private:
  RenderConfig config_;
  double efficiency_;
};

}  // namespace vstream::client
