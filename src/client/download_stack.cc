#include "client/download_stack.h"

namespace vstream::client {

DownloadStackProfile profile_for(const UserAgent& ua) {
  DownloadStackProfile p;

  const bool safari_off_mac =
      ua.browser == Browser::kSafari && ua.os != Os::kMacOs;
  const bool unpopular = !is_popular(ua.browser);

  if (safari_off_mac) {
    // Table 5: Safari on Linux/Windows mean DS ~1.03-1.04 s.
    p.extra_probability = 0.45;
    p.extra_median_ms = 1'500.0;
    p.extra_sigma = 0.8;
    p.anomaly_probability = 0.010;
    return p;
  }
  if (unpopular) {
    // Yandex/SeaMonkey "have higher download stack latencies" (§4.3-2).
    p.extra_probability = 0.30;
    p.extra_median_ms = 600.0;
    p.extra_sigma = 0.9;
    p.anomaly_probability = 0.006;
    return p;
  }

  switch (ua.browser) {
    case Browser::kChrome:
      // In-process (PPAPI) Flash: the most efficient data path.
      p.extra_probability = 0.10;
      p.extra_median_ms = 90.0;
      break;
    case Browser::kFirefox:
      // Out-of-process "protected mode" Flash: Table 5 mean ~283 ms
      // (Windows) / ~275 ms (Mac) among non-zero-DS chunks.
      p.extra_probability = 0.16;
      p.extra_median_ms = 170.0;
      break;
    case Browser::kInternetExplorer:
    case Browser::kEdge:
      p.extra_probability = 0.15;
      p.extra_median_ms = 150.0;
      break;
    case Browser::kSafari:  // on a Mac: native HLS, no Flash hop
      p.extra_probability = 0.08;
      p.extra_median_ms = 80.0;
      break;
    default:
      break;  // unreachable; unpopular handled above
  }
  return p;
}

DownloadStackSample DownloadStack::sample(std::uint32_t chunk_index,
                                          sim::Rng& rng) const {
  DownloadStackSample s;
  s.ds_ms = rng.lognormal_median(profile_.base_median_ms, profile_.base_sigma);

  if (rng.bernoulli(profile_.extra_probability)) {
    s.ds_ms +=
        rng.lognormal_median(profile_.extra_median_ms, profile_.extra_sigma);
  }
  if (chunk_index == 0) {
    // Progress-event registration / data-path setup (Fig. 18).
    s.ds_ms += rng.lognormal_median(profile_.first_chunk_median_ms,
                                    profile_.first_chunk_sigma);
  }
  if (rng.bernoulli(profile_.anomaly_probability)) {
    s.buffered_anomaly = true;
    s.hold_ms = rng.lognormal_median(profile_.anomaly_hold_median_ms,
                                     profile_.anomaly_hold_sigma);
  }
  return s;
}

}  // namespace vstream::client
