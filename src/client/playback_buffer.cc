#include "client/playback_buffer.h"

#include <algorithm>

namespace vstream::client {

DrainResult PlaybackBuffer::advance(sim::Ms wall_ms) {
  DrainResult result;
  if (wall_ms <= 0.0) return result;

  sim::Ms remaining = wall_ms;
  if (playing_) {
    const sim::Ms playable_ms = sim::seconds(level_s_);
    if (playable_ms > remaining) {
      level_s_ -= sim::to_seconds(remaining);
      remaining = 0.0;
    } else {
      // Buffer ran dry mid-interval: play out what we had, then stall.
      level_s_ = 0.0;
      remaining -= playable_ms;
      playing_ = false;
      ++result.stall_events;
    }
  }
  if (!playing_ && remaining > 0.0) {
    // Stalled (after startup) or still waiting for startup.  Only stalls
    // after playback began count as re-buffering.
    if (started_) result.stalled_ms += remaining;
  }
  clock_ms_ += wall_ms;
  return result;
}

void PlaybackBuffer::add_chunk(double seconds) {
  level_s_ += std::max(0.0, seconds);
  const double threshold =
      started_ ? config_.resume_threshold_s : config_.startup_threshold_s;
  if (!playing_ && level_s_ >= threshold) {
    playing_ = true;
    if (!started_) {
      started_ = true;
      startup_ms_ = clock_ms_;
    }
  }
}

double PlaybackBuffer::headroom_s() const {
  return std::max(0.0, config_.max_buffer_s - level_s_);
}

}  // namespace vstream::client
