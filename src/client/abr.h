// Adaptive bitrate (ABR) algorithms.
//
// The paper's player runs a production ABR "tuned ... to balance between
// low startup delay, low re-buffering rate, high quality and smoothness"
// (§2).  We implement the algorithm families its related-work section
// catalogues — rate-based [23, 32], buffer-based [20] and hybrid [37] —
// plus a fixed-bitrate control, behind one interface.  §4.3's over/under-
// shooting discussion is exercised by feeding rate-based ABR the
// client-observed throughput (which DS anomalies corrupt).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace vstream::client {

/// The standard bitrate ladder used across the library (kbps).
std::span<const std::uint32_t> default_bitrate_ladder();

/// Everything an ABR may look at when picking the next chunk's bitrate.
struct AbrContext {
  std::uint32_t chunk_index = 0;
  double buffer_s = 0.0;
  double max_buffer_s = 30.0;
  /// Client-observed throughput of the previous chunk (kbps); 0 before the
  /// first sample.  NOTE: inflated by download-stack buffering (§4.3-1).
  double last_throughput_kbps = 0.0;
  /// EWMA of observed throughput (kbps); what rate-based ABRs smooth over.
  double smoothed_throughput_kbps = 0.0;
  std::uint32_t last_bitrate_kbps = 0;
  /// A-priori knowledge that this client's /24 prefix has persistent
  /// network problems (§4.2-1 take-away: "identify the IP prefixes with
  /// known persistent problems and adjust the streaming algorithm
  /// accordingly, for example, to start the streaming with a more
  /// conservative initial bitrate").
  bool known_bad_prefix = false;
};

class AbrAlgorithm {
 public:
  virtual ~AbrAlgorithm() = default;

  /// Pick a bitrate from `ladder` (ascending kbps) for the next chunk.
  virtual std::uint32_t choose(const AbrContext& context,
                               std::span<const std::uint32_t> ladder) = 0;

  virtual std::string name() const = 0;
};

/// Always requests the same rung (clamped to the ladder).
class FixedAbr final : public AbrAlgorithm {
 public:
  explicit FixedAbr(std::uint32_t bitrate_kbps) : bitrate_(bitrate_kbps) {}
  std::uint32_t choose(const AbrContext& context,
                       std::span<const std::uint32_t> ladder) override;
  std::string name() const override { return "fixed"; }

 private:
  std::uint32_t bitrate_;
};

/// Rate-based: highest rung below safety * smoothed observed throughput,
/// starting conservatively on the first chunk.
class RateBasedAbr final : public AbrAlgorithm {
 public:
  explicit RateBasedAbr(double safety = 0.8) : safety_(safety) {}
  std::uint32_t choose(const AbrContext& context,
                       std::span<const std::uint32_t> ladder) override;
  std::string name() const override { return "rate-based"; }

 private:
  double safety_;
};

/// Buffer-based (BBA-style): map the buffer level linearly onto the ladder
/// between a reservoir and a cushion.
class BufferBasedAbr final : public AbrAlgorithm {
 public:
  BufferBasedAbr(double reservoir_s = 5.0, double cushion_s = 30.0)
      : reservoir_s_(reservoir_s), cushion_s_(cushion_s) {}
  std::uint32_t choose(const AbrContext& context,
                       std::span<const std::uint32_t> ladder) override;
  std::string name() const override { return "buffer-based"; }

 private:
  double reservoir_s_;
  double cushion_s_;
};

/// Model-predictive control (the control-theoretic approach of Yin et al.
/// [37], simplified): exhaustively search bitrate plans over a short
/// horizon, simulate the buffer dynamics each plan implies under the
/// current throughput estimate, and pick the first step of the plan with
/// the best QoE utility (bitrate reward − re-buffering penalty − switching
/// penalty).
class MpcAbr final : public AbrAlgorithm {
 public:
  struct Config {
    std::size_t horizon = 3;           ///< chunks of lookahead
    double chunk_duration_s = 6.0;
    double rebuffer_penalty = 3'000.0; ///< utility loss per stalled second
    double switch_penalty = 0.5;       ///< per kbps of bitrate change
    double throughput_safety = 0.9;    ///< discount on the estimate
  };

  MpcAbr() = default;
  explicit MpcAbr(Config config) : config_(config) {}
  std::uint32_t choose(const AbrContext& context,
                       std::span<const std::uint32_t> ladder) override;
  std::string name() const override { return "mpc"; }

 private:
  /// Utility of one plan starting from `buffer_s` (recursive search).
  double plan_utility(std::span<const std::uint32_t> ladder,
                      double throughput_kbps, double buffer_s,
                      std::uint32_t prev_bitrate, std::size_t depth,
                      std::uint32_t* first_choice) const;

  Config config_{};
};

/// Hybrid: rate-based ceiling, buffer-based floor — never pick a rung the
/// throughput cannot sustain, but let a deep buffer reach higher than the
/// rate alone would.
class HybridAbr final : public AbrAlgorithm {
 public:
  std::uint32_t choose(const AbrContext& context,
                       std::span<const std::uint32_t> ladder) override;
  std::string name() const override { return "hybrid"; }

 private:
  RateBasedAbr rate_{0.9};
  BufferBasedAbr buffer_{};
};

enum class AbrKind { kFixed, kRateBased, kBufferBased, kHybrid, kMpc };

std::unique_ptr<AbrAlgorithm> make_abr(AbrKind kind,
                                       std::uint32_t fixed_bitrate_kbps = 0);
const char* to_string(AbrKind kind);

}  // namespace vstream::client
