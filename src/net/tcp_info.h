// A userspace snapshot of sender-side TCP state, mirroring the subset of
// Linux's `struct tcp_info` the paper's CDN instrumentation records
// (Table 2: CWND, SRTT, SRTTVAR, retx, MSS).
//
// Analyses must treat this struct as the *only* network observable — the
// simulator's ground truth (true path RTT, true loss times) is not exposed
// here, exactly as in production where the kernel exports smoothed
// estimators only (§5 discussion point 2).
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace vstream::net {

struct TcpInfo {
  sim::Ms srtt_ms = 0.0;     ///< smoothed RTT (RFC 6298 EWMA)
  sim::Ms rttvar_ms = 0.0;   ///< smoothed mean deviation of RTT
  std::uint32_t cwnd_segments = 0;
  std::uint32_t ssthresh_segments = 0;
  std::uint32_t mss_bytes = 0;
  std::uint64_t total_retrans = 0;  ///< cumulative retransmitted segments
  std::uint64_t segments_out = 0;   ///< cumulative data segments sent
  std::uint64_t bytes_acked = 0;
  bool in_slow_start = false;

  /// Sender throughput estimate from TCP state (paper Eq. 3):
  /// TP = MSS * CWND / SRTT, in kilobits per second.
  double throughput_estimate_kbps() const {
    if (srtt_ms <= 0.0) return 0.0;
    return static_cast<double>(mss_bytes) * cwnd_segments * 8.0 / srtt_ms;
  }
};

}  // namespace vstream::net
