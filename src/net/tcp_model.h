// Round-granularity TCP sender model.
//
// The paper never needs packet traces: its CDN-side instrumentation is the
// kernel's tcp_info snapshot (SRTT, RTTVAR, CWND, MSS, retransmission
// counters) sampled every 500 ms (§2.1).  We therefore simulate a Reno-like
// sender at per-RTT round granularity:
//
//   * slow start doubles CWND per round, congestion avoidance adds one
//     segment per round,
//   * losses come from random per-segment drops plus drop-tail overflow
//     when the window exceeds the path pipe (BDP + bottleneck buffer);
//     both trigger fast retransmit (ssthresh = cwnd/2) and cost one
//     recovery round.  Slow start's doubling overshoots the pipe by up to
//     2x, which is exactly the bursty end-of-slow-start loss the paper
//     blames for first-chunk retransmissions (§4.2-3, Fig. 15),
//   * after an idle period longer than the RTO the congestion window
//     resets to IW (RFC 2861 congestion-window validation) while ssthresh
//     keeps the learned path memory — so steady-state chunks ramp quickly
//     and cleanly,
//   * SRTT/RTTVAR follow the RFC 6298 EWMAs exactly as the kernel computes
//     them, so downstream analyses inherit the same estimator bias the
//     paper discusses (srtt_min > true min RTT, §4.2-1 footnote).
//
// transfer() moves one chunk over the connection and reports both the
// aggregate result (duration, first-byte time, retransmissions) and the
// per-round snapshot timeline that the telemetry layer downsamples to the
// paper's 500 ms tcp_info cadence.
#pragma once

#include <cstdint>
#include <vector>

#include "net/path_model.h"
#include "net/tcp_info.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace vstream::net {

/// Congestion-avoidance flavour.  Reno grows one segment per RTT; CUBIC
/// (the Linux default since 2.6.19, i.e. what the paper's CDN ran) follows
/// the cubic curve W(t) = C*(t-K)^3 + W_max — concave back toward the
/// window where the last loss happened, brief plateau, then convex probing.
enum class CongestionControl : std::uint8_t { kReno, kCubic };

const char* to_string(CongestionControl cc);

struct TcpConfig {
  CongestionControl congestion_control = CongestionControl::kReno;
  /// CUBIC constants (RFC 8312 defaults).
  double cubic_c = 0.4;
  double cubic_beta = 0.7;

  std::uint32_t mss_bytes = 1460;
  std::uint32_t initial_window = 10;        ///< IW10 (paper §4.3-3 filter)
  std::uint32_t initial_ssthresh = 1'000;   ///< effectively "until first loss"
  std::uint32_t max_cwnd = 4'096;
  sim::Ms min_rto_ms = 200.0;
  /// Server-side pacing (paper take-away §4.2-3, [19] Trickle): spreads the
  /// window over the RTT so bursts never overflow the bottleneck buffer;
  /// modelled as clamping the per-round window to the pipe size instead of
  /// dropping the excess.
  bool pacing = false;

  /// HyStart-style slow-start exit: when the standing queue passes the
  /// threshold, leave slow start without a loss.  Real HyStart misses the
  /// signal on jittery paths, so each connection draws whether it works;
  /// the sessions where it fails are the ones whose first chunk bursts
  /// losses at the end of slow start (Fig. 15).
  double hystart_success_prob = 0.5;
  sim::Ms hystart_queue_threshold_ms = 8.0;

  /// Receiver advertised window in segments (flow control); 0 = unlimited.
  /// Client OS receive-buffer autotuning caps this in practice, and a rwnd
  /// below the path pipe keeps the session loss-free.
  std::uint32_t receiver_window_segments = 0;
};

/// Aggregate outcome of one chunk transfer.
struct TransferResult {
  sim::Ms duration_ms = 0.0;    ///< request sent -> last byte at client NIC
  sim::Ms first_byte_ms = 0.0;  ///< request sent -> first byte at client NIC
                                ///< (one full RTT: request up + data down)
  std::uint32_t segments = 0;       ///< data segments (excluding retx)
  std::uint32_t retransmissions = 0;
  std::uint32_t rounds = 0;
};

/// One per-round checkpoint of connection state during a transfer.
struct RoundSample {
  sim::Ms at_ms = 0.0;  ///< offset from the start of the transfer
  TcpInfo info;
};

class TcpConnection {
 public:
  TcpConnection(TcpConfig config, PathConfig path, sim::Rng rng);

  /// Transfer `bytes` over the connection, advancing congestion state.
  /// `round_samples`, if non-null, receives per-round tcp_info checkpoints.
  TransferResult transfer(std::uint64_t bytes,
                          std::vector<RoundSample>* round_samples = nullptr);

  /// Snapshot of current state, as the CDN's tcp_info sampler would read it.
  TcpInfo info() const;

  /// Retransmission timeout per the kernel's formula (max(min_rto,
  /// srtt + 4*rttvar)); exposed because the connection uses it internally.
  sim::Ms rto_ms() const;

  /// Idle time between transfers: the bottleneck queue drains, and an idle
  /// longer than the RTO resets CWND to IW (congestion-window validation,
  /// RFC 2861) while keeping ssthresh.
  void idle(sim::Ms idle_ms);

  const PathModel& path() const { return path_; }
  /// Mutable path access for scripted experiments (loss schedules).
  PathModel& mutable_path() { return path_; }
  const TcpConfig& config() const { return config_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }
  std::uint32_t cwnd() const { return cwnd_; }
  bool hystart_active() const { return hystart_active_; }

 private:
  void observe_rtt(sim::Ms sample_ms);
  void on_loss();
  void grow_window(sim::Ms round_ms);

  TcpConfig config_;
  PathModel path_;
  sim::Rng rng_;
  bool hystart_active_ = false;

  std::uint32_t cwnd_;
  std::uint32_t ssthresh_;
  bool srtt_initialized_ = false;
  sim::Ms srtt_ms_ = 0.0;
  sim::Ms rttvar_ms_ = 0.0;
  std::uint64_t total_retrans_ = 0;
  std::uint64_t segments_out_ = 0;
  std::uint64_t bytes_acked_ = 0;

  // CUBIC state: window at the last loss, congestion-avoidance time since
  // it (the `t` of the cubic curve), and CA rounds for the TCP-friendly
  // lower bound.
  double cubic_wmax_ = 0.0;
  sim::Ms cubic_epoch_ms_ = 0.0;
  std::uint64_t cubic_epoch_rounds_ = 0;
};

}  // namespace vstream::net
