#include "net/path_model.h"

#include <algorithm>

#include "net/geo.h"

namespace vstream::net {

const char* to_string(AccessType type) {
  switch (type) {
    case AccessType::kResidential: return "residential";
    case AccessType::kEnterprise: return "enterprise";
    case AccessType::kInternational: return "international";
  }
  return "unknown";
}

PathConfig make_path_config(AccessType type, double distance_km,
                            double bottleneck_kbps) {
  PathConfig config;
  config.bottleneck_kbps = bottleneck_kbps;
  // Access-network base latency on top of propagation: DOCSIS/DSL add a few
  // milliseconds; enterprise middleboxes and VPN hops add more.
  switch (type) {
    case AccessType::kResidential:
      config.base_rtt_ms = propagation_rtt_ms(distance_km) + 8.0;
      config.jitter_median_ms = 1.5;
      config.jitter_sigma = 0.7;
      config.random_loss = 1e-5;
      config.max_queue_ms = 100.0;
      config.spike_prob_per_round = 5e-5;
      config.spike_median_ms = 60.0;
      break;
    case AccessType::kEnterprise:
      // Proxies, inspection appliances and oversubscribed uplinks create the
      // high latency variability the paper measures for enterprises
      // (Table 4: ~40% of enterprise sessions have CV(SRTT) > 1, vs ~1%
      // residential).  The dominant mechanism is episodic: long congestion
      // events that multiply latency for seconds at a time.
      config.base_rtt_ms = propagation_rtt_ms(distance_km) + 12.0;
      config.jitter_median_ms = 8.0;
      config.jitter_sigma = 1.1;
      config.random_loss = 8e-5;
      config.max_queue_ms = 100.0;
      config.spike_prob_per_round = 3.5e-3;
      config.spike_median_ms = 450.0;
      config.spike_sigma = 0.8;
      break;
    case AccessType::kInternational:
      config.base_rtt_ms = propagation_rtt_ms(distance_km) + 10.0;
      config.jitter_median_ms = 3.0;
      config.jitter_sigma = 0.9;
      config.random_loss = 2e-4;
      config.max_queue_ms = 120.0;
      config.spike_prob_per_round = 5e-4;
      config.spike_median_ms = 120.0;
      break;
  }
  return config;
}

sim::Ms PathModel::sample_rtt(std::uint32_t window_segments,
                              std::uint32_t segment_bytes, sim::Rng& rng) {
  // Episodic latency spikes (enterprise congestion events, path changes).
  sim::Ms spike = 0.0;
  if (spike_rounds_left_ > 0) {
    spike = spike_ms_;
    --spike_rounds_left_;
  } else if (config_.spike_prob_per_round > 0.0 &&
             rng.bernoulli(config_.spike_prob_per_round)) {
    spike_ms_ = rng.lognormal_median(config_.spike_median_ms, config_.spike_sigma);
    spike_rounds_left_ = static_cast<std::uint32_t>(rng.uniform_int(
        config_.spike_min_rounds, config_.spike_max_rounds));
    spike = spike_ms_;
  }

  // Self-loading (paper §4.2-1 footnote): in an ack-clocked steady state
  // the standing queue is the in-flight excess over the BDP — serializing
  // the window takes serialize(W); whatever exceeds one base RTT of
  // transmission sits in the bottleneck buffer.  The queue therefore
  // tracks the window (it does not integrate across rounds), capped at the
  // buffer depth; anything beyond the cap is drop-tail territory, handled
  // by the TCP model via pipe_segments().
  const sim::Ms serialize = serialization_ms(window_segments, segment_bytes);
  queue_ms_ = std::clamp(serialize - config_.base_rtt_ms, 0.0,
                         config_.max_queue_ms);

  const sim::Ms jitter =
      rng.lognormal_median(config_.jitter_median_ms, config_.jitter_sigma);
  return config_.base_rtt_ms + jitter + spike + queue_ms_;
}

double PathModel::pipe_segments(std::uint32_t segment_bytes) const {
  const double bits_per_segment = 8.0 * static_cast<double>(segment_bytes);
  const double bdp =
      config_.bottleneck_kbps * config_.base_rtt_ms / bits_per_segment;
  const double buffer =
      config_.bottleneck_kbps * config_.max_queue_ms / bits_per_segment;
  return bdp + buffer;
}

sim::Ms PathModel::serialization_ms(std::uint32_t window_segments,
                                    std::uint32_t segment_bytes) const {
  if (config_.bottleneck_kbps <= 0.0) return 0.0;
  const double bits =
      static_cast<double>(window_segments) * segment_bytes * 8.0;
  return bits / config_.bottleneck_kbps;  // 1 kbit/s == 1 bit/ms
}

void PathModel::drain(sim::Ms idle_ms) {
  queue_ms_ = std::max(0.0, queue_ms_ - std::max(0.0, idle_ms));
}

}  // namespace vstream::net
