#include "net/packet_sim.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/event_queue.h"

namespace vstream::net {

namespace {

/// Whole simulation state, driven by the event queue.  The queue and the
/// per-packet scoreboards live in the caller's workspace so back-to-back
/// transfers reuse their capacity.
struct Flow {
  Flow(std::uint32_t packet_count, const PacketSimConfig& config,
       PacketSimWorkspace& workspace)
      : config(config),
        queue(workspace.queue),
        total(packet_count),
        retx_epoch(workspace.retx_epoch),
        received(workspace.received),
        transmitted_once(workspace.transmitted_once) {
    queue.reset();
    retx_epoch.assign(packet_count, 0);
    received.assign(packet_count, false);
    transmitted_once.assign(packet_count, false);
  }

  const PacketSimConfig& config;
  sim::EventQueue& queue;

  // Sender state.
  std::uint32_t total;
  double cwnd = 0.0;
  std::uint32_t ssthresh = 0;
  std::uint32_t next_to_send = 0;  ///< lowest never-transmitted id
  std::uint32_t cum_ack = 0;       ///< first unacked id at the sender
  std::uint32_t dupacks = 0;
  bool in_recovery = false;
  std::uint32_t recover_point = 0;
  sim::Ms last_progress_ms = 0.0;
  // SACK-style recovery: the receiver's `received` array doubles as the
  // SACK scoreboard (the information real SACK blocks would carry); during
  // recovery each incoming ACK clocks out the next un-retransmitted hole.
  std::uint32_t recovery_epoch = 0;
  std::uint32_t next_hole_scan = 0;
  std::vector<std::uint32_t>& retx_epoch;

  // Receiver state.
  std::vector<bool>& received;
  std::uint32_t next_expected = 0;

  // Bottleneck link (data direction).
  sim::Ms link_free_at_ms = 0.0;

  // Accounting.
  std::vector<bool>& transmitted_once;
  PacketSimResult result;
  bool done = false;

  sim::Ms serialize_ms() const {
    return static_cast<double>(config.mss_bytes) * 8.0 /
           config.bottleneck_kbps;
  }

  std::uint32_t inflight() const {
    return next_to_send > cum_ack ? next_to_send - cum_ack : 0;
  }

  void transmit(std::uint32_t id);
  void send_available();
  void retransmit_next_hole();
  void on_data_at_receiver(std::uint32_t id);
  void on_ack_at_sender(std::uint32_t ack_no);
  void arm_rto();
  void on_rto_check(sim::Ms armed_for_progress_at);
  void grow_on_ack(std::uint32_t newly_acked);
};

void Flow::transmit(std::uint32_t id) {
  if (done || id >= total) return;
  if (transmitted_once[id]) {
    ++result.retransmissions;
  } else {
    transmitted_once[id] = true;
  }

  // Drop-tail bottleneck: a packet that would wait longer than the buffer
  // depth is dropped on arrival.
  const sim::Ms now = queue.now();
  const sim::Ms start = std::max(now, link_free_at_ms);
  if (start - now > config.max_queue_ms) {
    return;  // lost; recovery via dupacks or RTO
  }
  link_free_at_ms = start + serialize_ms();
  const sim::Ms deliver_at = link_free_at_ms + config.one_way_prop_ms;
  queue.schedule_at(deliver_at, [this, id] { on_data_at_receiver(id); });
}

void Flow::send_available() {
  const auto window = static_cast<std::uint32_t>(
      std::min<double>(std::floor(cwnd), config.max_cwnd));
  while (!done && next_to_send < total && inflight() < window) {
    transmit(next_to_send++);
  }
  result.max_cwnd_seen =
      std::max(result.max_cwnd_seen, static_cast<std::uint32_t>(cwnd));
}

void Flow::retransmit_next_hole() {
  std::uint32_t id = std::max(next_hole_scan, cum_ack);
  while (id < recover_point) {
    if (!received[id] && retx_epoch[id] != recovery_epoch) {
      retx_epoch[id] = recovery_epoch;
      next_hole_scan = id + 1;
      transmit(id);
      return;
    }
    ++id;
  }
  next_hole_scan = id;
}

void Flow::on_data_at_receiver(std::uint32_t id) {
  if (done) return;
  const sim::Ms now = queue.now();
  if (id == 0 && result.first_byte_ms == 0.0) result.first_byte_ms = now;
  if (!received[id]) {
    received[id] = true;
    while (next_expected < total && received[next_expected]) ++next_expected;
  }
  if (next_expected >= total) {
    // All data at the client: the transfer is complete from the player's
    // perspective (the final ACK still travels, but nobody waits for it).
    result.duration_ms = now;
    done = true;
    queue.clear();
    return;
  }
  // Cumulative ACK back to the sender (uncontended reverse path).
  const std::uint32_t ack_no = next_expected;
  queue.schedule_at(now + config.one_way_prop_ms,
                    [this, ack_no] { on_ack_at_sender(ack_no); });
}

void Flow::grow_on_ack(std::uint32_t newly_acked) {
  if (cwnd < static_cast<double>(ssthresh)) {
    cwnd += static_cast<double>(newly_acked);  // slow start: +1 per ack
  } else {
    cwnd += static_cast<double>(newly_acked) / std::max(1.0, cwnd);
  }
  cwnd = std::min(cwnd, static_cast<double>(config.max_cwnd));
}

void Flow::on_ack_at_sender(std::uint32_t ack_no) {
  if (done) return;
  if (ack_no > cum_ack) {
    const std::uint32_t newly_acked = ack_no - cum_ack;
    cum_ack = ack_no;
    dupacks = 0;
    last_progress_ms = queue.now();
    if (in_recovery) {
      if (cum_ack >= recover_point) {
        in_recovery = false;
        cwnd = static_cast<double>(ssthresh);  // deflate after recovery
      } else {
        // Partial ACK: clock out the next hole (SACK-style recovery).
        retransmit_next_hole();
      }
    } else {
      grow_on_ack(newly_acked);
    }
    arm_rto();
    send_available();
    return;
  }
  // Duplicate ACK.
  ++dupacks;
  if (dupacks == 3 && !in_recovery) {
    // Fast retransmit / fast recovery with SACK scoreboard.
    ssthresh = std::max(2u, inflight() / 2);
    cwnd = static_cast<double>(ssthresh) + 3.0;
    in_recovery = true;
    ++recovery_epoch;
    recover_point = next_to_send;
    next_hole_scan = cum_ack;
    retransmit_next_hole();
  } else if (in_recovery) {
    cwnd += 1.0;  // window inflation per extra dupack
    retransmit_next_hole();
    send_available();
  }
}

void Flow::arm_rto() {
  const sim::Ms armed_for = last_progress_ms;
  queue.schedule_at(queue.now() + config.rto_ms,
                    [this, armed_for] { on_rto_check(armed_for); });
}

void Flow::on_rto_check(sim::Ms armed_for_progress_at) {
  if (done || cum_ack >= total) return;
  if (last_progress_ms > armed_for_progress_at) return;  // progress since
  // Retransmission timeout: collapse to one segment and slow start again.
  ++result.timeouts;
  ssthresh = std::max(2u, inflight() / 2);
  cwnd = 1.0;
  in_recovery = false;
  dupacks = 0;
  last_progress_ms = queue.now();
  transmit(cum_ack);
  arm_rto();
}

}  // namespace

PacketSimResult simulate_packet_transfer(std::uint64_t bytes,
                                         const PacketSimConfig& config) {
  PacketSimWorkspace workspace;
  return simulate_packet_transfer(bytes, config, workspace);
}

PacketSimResult simulate_packet_transfer(std::uint64_t bytes,
                                         const PacketSimConfig& config,
                                         PacketSimWorkspace& workspace) {
  PacketSimResult empty;
  if (bytes == 0) return empty;
  const auto packets = static_cast<std::uint32_t>(
      (bytes + config.mss_bytes - 1) / config.mss_bytes);

  Flow flow(packets, config, workspace);
  flow.cwnd = static_cast<double>(std::max(1u, config.initial_window));
  flow.ssthresh = config.initial_ssthresh;
  flow.result.segments = packets;

  // The request travels client -> server for half an RTT before the first
  // data packet leaves (mirrors the round model's rtt0 accounting).
  flow.queue.schedule_at(config.one_way_prop_ms, [&flow] {
    flow.last_progress_ms = flow.queue.now();
    flow.arm_rto();
    flow.send_available();
  });
  flow.queue.run_all();
  return flow.result;
}

}  // namespace vstream::net
