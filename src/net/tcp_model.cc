#include "net/tcp_model.h"

#include <algorithm>
#include <cmath>

namespace vstream::net {

const char* to_string(CongestionControl cc) {
  switch (cc) {
    case CongestionControl::kReno: return "reno";
    case CongestionControl::kCubic: return "cubic";
  }
  return "unknown";
}

TcpConnection::TcpConnection(TcpConfig config, PathConfig path, sim::Rng rng)
    : config_(config),
      path_(path),
      rng_(rng),
      cwnd_(std::max(1u, config.initial_window)),
      ssthresh_(config.initial_ssthresh) {
  hystart_active_ = rng_.bernoulli(config_.hystart_success_prob);
}

void TcpConnection::observe_rtt(sim::Ms m) {
  // RFC 6298 estimators, as implemented by the Linux kernel (alpha = 1/8,
  // beta = 1/4).  The paper's analyses consume exactly these smoothed values.
  if (!srtt_initialized_) {
    srtt_ms_ = m;
    rttvar_ms_ = m / 2.0;
    srtt_initialized_ = true;
    return;
  }
  const sim::Ms err = m - srtt_ms_;
  rttvar_ms_ = 0.75 * rttvar_ms_ + 0.25 * std::abs(err);
  srtt_ms_ = srtt_ms_ + err / 8.0;
}

void TcpConnection::on_loss() {
  if (config_.congestion_control == CongestionControl::kCubic) {
    // CUBIC multiplicative decrease: remember where the loss happened and
    // back off by beta; the cubic curve then climbs back toward W_max.
    cubic_wmax_ = static_cast<double>(cwnd_);
    cubic_epoch_ms_ = 0.0;
    cubic_epoch_rounds_ = 0;
    ssthresh_ = std::max(
        2u, static_cast<std::uint32_t>(config_.cubic_beta * cwnd_));
    cwnd_ = ssthresh_;
    return;
  }
  // Reno fast-retransmit/fast-recovery approximation: halve the window once
  // per loss round and leave slow start.
  ssthresh_ = std::max(2u, cwnd_ / 2);
  cwnd_ = ssthresh_;
}

void TcpConnection::grow_window(sim::Ms round_ms) {
  if (in_slow_start()) {
    if (hystart_active_ &&
        path_.queue_ms() > config_.hystart_queue_threshold_ms) {
      // HyStart: the queue is building — leave slow start before the
      // doubling overflows the bottleneck buffer.
      ssthresh_ = std::max(2u, cwnd_);
      if (config_.congestion_control == CongestionControl::kCubic &&
          cubic_wmax_ < static_cast<double>(cwnd_)) {
        // Treat the HyStart exit point as the curve's anchor.
        cubic_wmax_ = static_cast<double>(cwnd_);
        cubic_epoch_ms_ = 0.0;
        cubic_epoch_rounds_ = 0;
      }
    } else {
      cwnd_ = std::min(config_.max_cwnd, cwnd_ * 2);
    }
    return;
  }

  if (config_.congestion_control == CongestionControl::kCubic &&
      cubic_wmax_ > 0.0) {
    // RFC 8312: W(t) = C*(t-K)^3 + W_max with K = cbrt(W_max*(1-beta)/C),
    // t advancing with congestion-avoidance time; never below the
    // TCP-friendly Reno-equivalent estimate.
    cubic_epoch_ms_ += std::max(round_ms, 0.0);
    ++cubic_epoch_rounds_;
    const double t_s = sim::to_seconds(cubic_epoch_ms_);
    const double k = std::cbrt(cubic_wmax_ * (1.0 - config_.cubic_beta) /
                               config_.cubic_c);
    const double w_cubic =
        config_.cubic_c * (t_s - k) * (t_s - k) * (t_s - k) + cubic_wmax_;
    const double w_friendly =
        cubic_wmax_ * config_.cubic_beta +
        3.0 * (1.0 - config_.cubic_beta) / (1.0 + config_.cubic_beta) *
            static_cast<double>(cubic_epoch_rounds_);
    const double target = std::max(w_cubic, w_friendly);
    // Bound per-round growth so the curve's convex tail cannot teleport.
    const auto bounded = static_cast<std::uint32_t>(std::clamp(
        target, static_cast<double>(cwnd_), static_cast<double>(cwnd_) * 1.5));
    cwnd_ = std::min(config_.max_cwnd, std::max(cwnd_, bounded));
  } else {
    cwnd_ = std::min(config_.max_cwnd, cwnd_ + 1);
  }
}

sim::Ms TcpConnection::rto_ms() const {
  return std::max<sim::Ms>(config_.min_rto_ms, srtt_ms_ + 4.0 * rttvar_ms_);
}

void TcpConnection::idle(sim::Ms idle_ms) {
  path_.drain(idle_ms);
  if (srtt_initialized_ && idle_ms > rto_ms()) {
    // RFC 2861 congestion-window validation: after an RTO of idle the
    // window is no longer validated; restart from IW.  ssthresh keeps the
    // path memory, so the next chunk slow-starts straight back to it.
    cwnd_ = std::max(1u, config_.initial_window);
  }
}

TcpInfo TcpConnection::info() const {
  TcpInfo info;
  info.srtt_ms = srtt_ms_;
  info.rttvar_ms = rttvar_ms_;
  info.cwnd_segments = cwnd_;
  info.ssthresh_segments = ssthresh_;
  info.mss_bytes = config_.mss_bytes;
  info.total_retrans = total_retrans_;
  info.segments_out = segments_out_;
  info.bytes_acked = bytes_acked_;
  info.in_slow_start = in_slow_start();
  return info;
}

TransferResult TcpConnection::transfer(std::uint64_t bytes,
                                       std::vector<RoundSample>* round_samples) {
  TransferResult result;
  if (bytes == 0) return result;

  const std::uint32_t mss = config_.mss_bytes;
  std::uint64_t remaining =
      (bytes + mss - 1) / mss;  // segments left to deliver
  result.segments = static_cast<std::uint32_t>(remaining);

  // Pipe capacity (BDP + bottleneck buffer) in segments: windows beyond it
  // overflow the buffer.  Slow start's doubling overshoots by up to 2x —
  // the bursty end-of-slow-start loss of §4.2-3 — while congestion
  // avoidance only ever pokes one segment past.
  const double pipe_segments = path_.pipe_segments(mss);

  const std::uint32_t rwnd = config_.receiver_window_segments != 0
                                 ? config_.receiver_window_segments
                                 : config_.max_cwnd;

  sim::Ms clock = 0.0;
  while (remaining > 0) {
    std::uint32_t window = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(std::min(cwnd_, rwnd), remaining));

    // Drop-tail overflow (or pacing clamp) for the share of the window
    // beyond the pipe.
    std::uint32_t lost = 0;
    if (static_cast<double>(window) > pipe_segments) {
      const auto pipe_floor =
          std::max<std::uint32_t>(1, static_cast<std::uint32_t>(pipe_segments));
      if (config_.pacing) {
        // Paced senders spread the excess over subsequent rounds instead of
        // bursting it into a full buffer.
        window = pipe_floor;
      } else {
        const std::uint32_t excess = window - pipe_floor;
        for (std::uint32_t s = 0; s < excess; ++s) {
          if (path_.tail_dropped(rng_)) ++lost;
        }
      }
    }

    // Sample this round's RTT (advances the self-loading queue state) and
    // charge the round: a window takes max(rtt, serialization time) to be
    // delivered and acknowledged.
    const sim::Ms rtt = path_.sample_rtt(window, mss, rng_);
    const sim::Ms round_ms =
        std::max(rtt, path_.serialization_ms(window, mss));

    // Random per-segment loss draws for this round.
    for (std::uint32_t s = 0; s < window; ++s) {
      if (path_.segment_lost(rng_)) ++lost;
    }
    lost = std::min(lost, window);

    segments_out_ += window;
    ++result.rounds;

    if (result.rounds == 1) {
      // First data byte reaches the client one path RTT after the request
      // left it (request up + first segment down).  Queueing cannot have
      // built up yet, so this is the cleanest rtt0 observation.
      result.first_byte_ms = rtt;
    }

    if (lost > 0) {
      // Lost segments are retransmitted in a recovery round; the window
      // minus the losses is delivered this round.
      observe_rtt(rtt);
      on_loss();
      total_retrans_ += lost;
      result.retransmissions += lost;

      // Losing most of a window defeats fast retransmit (not enough dupacks)
      // and costs a full retransmission timeout — the stall that makes
      // early-session loss so damaging to QoE (§4.2-3).
      if (lost * 2 > window) {
        clock += rto_ms();
      }

      const std::uint64_t delivered = window - lost;
      remaining -= delivered;
      bytes_acked_ += delivered * static_cast<std::uint64_t>(mss);
      clock += round_ms;

      // Recovery round: retransmit the lost segments.
      const sim::Ms rec_rtt = path_.sample_rtt(lost, mss, rng_);
      observe_rtt(rec_rtt);
      segments_out_ += lost;
      ++result.rounds;
      remaining -= std::min<std::uint64_t>(lost, remaining);
      bytes_acked_ += static_cast<std::uint64_t>(lost) * mss;
      clock += std::max(rec_rtt, path_.serialization_ms(lost, mss));
    } else {
      observe_rtt(rtt);
      remaining -= window;
      bytes_acked_ += static_cast<std::uint64_t>(window) * mss;
      clock += round_ms;
      // Window growth only on clean rounds.
      grow_window(round_ms);
    }

    if (round_samples != nullptr) {
      round_samples->push_back(RoundSample{clock, info()});
    }
  }

  // The last byte cannot arrive before the whole transfer has serialized
  // through the bottleneck — even when the congestion window covers the
  // object in a single round.  Without this floor a one-round transfer
  // would report last-byte == first-byte (an infinite instantaneous
  // throughput, which only stack-buffered delivery should produce).
  result.duration_ms =
      std::max(clock, result.first_byte_ms +
                          path_.serialization_ms(result.segments, mss));
  if (round_samples != nullptr && !round_samples->empty()) {
    round_samples->back().at_ms =
        std::max(round_samples->back().at_ms, result.duration_ms);
  }
  return result;
}

}  // namespace vstream::net
