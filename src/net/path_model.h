// Network path model between a CDN server and a client.
//
// The paper's network findings (§4.2) attribute performance to a small set
// of path properties: baseline propagation delay (distance), latency
// variability (residential vs enterprise paths), random and bursty packet
// loss, and throughput limits with self-loading queueing delay.  PathModel
// captures exactly those properties and hands the TCP model per-round RTT
// samples and per-segment loss draws.
//
// Loss comes from two processes:
//   * random per-segment loss (rare on good paths; heterogeneous across
//     client prefixes), and
//   * drop-tail overflow at the bottleneck buffer, drawn by the TCP model
//     whenever the in-flight window exceeds the pipe (BDP + buffer).  This
//     is what makes end-of-slow-start losses bursty (§4.2-3) while
//     congestion-avoidance losses trickle.
//
// Latency variability comes from per-round jitter plus episodic "spikes"
// (path-change/middlebox congestion events lasting many rounds) — the
// mechanism behind enterprise paths' CV(SRTT) > 1 sessions (Table 4).
#pragma once

#include <cstdint>

#include "sim/rng.h"
#include "sim/time.h"

namespace vstream::net {

/// Broad classes of client access path; used to pick jitter/loss profiles.
enum class AccessType : std::uint8_t {
  kResidential,    ///< cable/fibre eyeball networks — low jitter
  kEnterprise,     ///< corporate networks, VPNs, proxies — high jitter
  kInternational,  ///< long transoceanic paths — high base RTT
};

const char* to_string(AccessType type);

struct PathConfig {
  sim::Ms base_rtt_ms = 20.0;      ///< propagation + access, no queueing
  sim::Ms jitter_median_ms = 1.0;  ///< median of per-round additive jitter
  double jitter_sigma = 0.6;       ///< log-normal shape of jitter
  double random_loss = 0.0;        ///< per-segment random loss probability
  double bottleneck_kbps = 20'000;  ///< path capacity
  sim::Ms max_queue_ms = 60.0;     ///< bottleneck buffer depth (self-loading cap)
  /// Per-segment drop probability for segments beyond the pipe capacity
  /// (BDP + buffer) in one round — drop-tail overflow.
  double tail_drop_prob = 0.5;

  // Episodic latency spikes (congestion events, path changes).
  double spike_prob_per_round = 0.0;  ///< chance a spike starts each round
  sim::Ms spike_median_ms = 100.0;    ///< log-normal spike magnitude
  double spike_sigma = 0.8;
  std::uint32_t spike_min_rounds = 20;
  std::uint32_t spike_max_rounds = 120;
};

/// Reasonable defaults per access type at a given propagation distance.
PathConfig make_path_config(AccessType type, double distance_km,
                            double bottleneck_kbps);

/// Mutable path state (current bottleneck queue, active latency spike)
/// plus the sampling logic.
class PathModel {
 public:
  explicit PathModel(PathConfig config) : config_(config) {}

  const PathConfig& config() const { return config_; }

  /// One RTT observation for a window of `window_segments` segments of
  /// `segment_bytes` each: base + jitter + spike + current queueing delay.
  /// Also advances the self-loading queue and spike state.
  sim::Ms sample_rtt(std::uint32_t window_segments, std::uint32_t segment_bytes,
                     sim::Rng& rng);

  /// True if this segment is lost to the random-loss process.  Defined
  /// inline: the TCP model draws this once per in-flight segment (~70 per
  /// round), and a cross-TU call per draw showed up in profiles.
  bool segment_lost(sim::Rng& rng) const {
    return rng.bernoulli(config_.random_loss);
  }

  /// True if an over-pipe segment is dropped at the bottleneck tail.
  bool tail_dropped(sim::Rng& rng) const {
    return rng.bernoulli(config_.tail_drop_prob);
  }

  /// Bottleneck pipe size in segments: BDP plus buffer capacity.  Windows
  /// beyond this overflow the buffer (drop-tail).
  double pipe_segments(std::uint32_t segment_bytes) const;

  /// Milliseconds to serialize a window at the bottleneck capacity.
  sim::Ms serialization_ms(std::uint32_t window_segments,
                           std::uint32_t segment_bytes) const;

  /// Current standing queue delay (exposed for tests).
  sim::Ms queue_ms() const { return queue_ms_; }

  /// Whether a latency spike is in progress (exposed for tests).
  bool spiking() const { return spike_rounds_left_ > 0; }

  /// Override the random per-segment loss probability (scripted loss
  /// schedules, e.g. the Fig. 13 loss-timing case study).
  void set_random_loss(double p) { config_.random_loss = p; }

  /// Idle period: the bottleneck queue drains between chunk downloads.
  void drain(sim::Ms idle_ms);

 private:
  PathConfig config_;
  sim::Ms queue_ms_ = 0.0;
  std::uint32_t spike_rounds_left_ = 0;
  sim::Ms spike_ms_ = 0.0;
};

}  // namespace vstream::net
