#include "net/prefix.h"

#include <cstdio>
#include <stdexcept>

namespace vstream::net {

std::string format_ip(IpV4 ip) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xFF,
                (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF);
  return buf;
}

std::string format_prefix24(Prefix24 prefix) {
  return format_ip(prefix) + "/24";
}

IpV4 parse_ip(const std::string& text) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = 0;
  const int n =
      std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument("parse_ip: malformed address: " + text);
  }
  return make_ip(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                 static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

}  // namespace vstream::net
