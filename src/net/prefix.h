// IPv4 addresses and /24 prefix aggregation.
//
// The paper aggregates sessions into /24 client prefixes for the persistent
// network-problem analyses (§4.2: "most allocated blocks and BGP prefixes
// are /24 prefixes").  We mirror that: client IPs are synthetic but prefix
// arithmetic is the real thing.
#pragma once

#include <cstdint>
#include <string>

namespace vstream::net {

using IpV4 = std::uint32_t;

/// The /24 network containing an address, kept in the same integer form
/// (low 8 bits zeroed).
using Prefix24 = std::uint32_t;

constexpr IpV4 make_ip(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                       std::uint8_t d) {
  return (static_cast<IpV4>(a) << 24) | (static_cast<IpV4>(b) << 16) |
         (static_cast<IpV4>(c) << 8) | d;
}

constexpr Prefix24 prefix24_of(IpV4 ip) { return ip & 0xFFFFFF00u; }

/// Dotted-quad formatting, e.g. "192.0.2.17".
std::string format_ip(IpV4 ip);

/// Prefix formatting, e.g. "192.0.2.0/24".
std::string format_prefix24(Prefix24 prefix);

/// Parse a dotted quad; throws std::invalid_argument on malformed input.
IpV4 parse_ip(const std::string& text);

}  // namespace vstream::net
