// Geography substrate: coordinates, great-circle distance and a small city
// table used to place CDN PoPs and client populations.
//
// The paper (§4.2-1) aggregates tail-latency prefixes by geographic distance
// from the CDN servers (Fig. 9); we reproduce that analysis with a synthetic
// but structurally faithful client geography (93% US clients, the rest
// international, matching §3).
#pragma once

#include <span>
#include <string>

namespace vstream::net {

struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// Great-circle distance between two points, in kilometres.
double haversine_km(const GeoPoint& a, const GeoPoint& b);

/// Rough one-way propagation delay over fibre for a great-circle distance.
/// Fibre paths are not straight lines; the customary rule of thumb is
/// ~1 ms of RTT per 100 km of great-circle distance, which folds in the
/// refractive index of glass and route stretch.
double propagation_rtt_ms(double distance_km);

struct City {
  std::string name;
  std::string country;  // ISO-like short code, "US", "DE", ...
  GeoPoint location;
};

/// US metro areas used for clients and PoPs.
std::span<const City> us_cities();

/// Non-US cities used for the international client slice.
std::span<const City> world_cities();

}  // namespace vstream::net
