// Packet-level single-flow TCP reference simulation.
//
// The production model (net::TcpConnection) works at round granularity for
// speed.  This module is its ground truth: an event-driven, per-packet
// Reno sender pushing one transfer through a FIFO drop-tail bottleneck.
// It exists to *validate* the round model — bench_model_validation runs
// both across a (bandwidth, RTT, buffer, size) grid and compares transfer
// durations and loss behaviour — and is deliberately scoped to a single
// deterministic flow (no random loss, no jitter): every divergence is then
// a modelling difference, not noise.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace vstream::net {

struct PacketSimConfig {
  double bottleneck_kbps = 12'000.0;
  sim::Ms one_way_prop_ms = 15.0;  ///< each direction; RTT = 2x + queueing
  sim::Ms max_queue_ms = 100.0;    ///< drop-tail buffer depth in time units
  std::uint32_t mss_bytes = 1'460;
  std::uint32_t initial_window = 10;
  std::uint32_t initial_ssthresh = 1'000;
  std::uint32_t max_cwnd = 4'096;
  sim::Ms rto_ms = 400.0;  ///< fixed retransmission timeout
};

struct PacketSimResult {
  sim::Ms duration_ms = 0.0;        ///< request sent -> last byte acked
  sim::Ms first_byte_ms = 0.0;      ///< request sent -> first data packet
                                    ///< arrives at the receiver
  std::uint32_t segments = 0;
  std::uint32_t retransmissions = 0;
  std::uint32_t timeouts = 0;
  std::uint32_t max_cwnd_seen = 0;
};

/// Reusable buffers for simulate_packet_transfer.  The validation grid
/// runs thousands of transfers back to back; handing each one the same
/// workspace replaces the per-transfer queue + scoreboard allocations with
/// vector reuse (the event queue keeps its slot pool across reset()).
struct PacketSimWorkspace {
  sim::EventQueue queue;
  std::vector<std::uint32_t> retx_epoch;
  std::vector<bool> received;
  std::vector<bool> transmitted_once;
};

/// Simulate one `bytes`-long transfer (preceded by a half-RTT request, as
/// in the round model's accounting).  Fully deterministic.
PacketSimResult simulate_packet_transfer(std::uint64_t bytes,
                                         const PacketSimConfig& config);

/// Same, reusing the caller's workspace across transfers.
PacketSimResult simulate_packet_transfer(std::uint64_t bytes,
                                         const PacketSimConfig& config,
                                         PacketSimWorkspace& workspace);

}  // namespace vstream::net
