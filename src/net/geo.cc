#include "net/geo.h"

#include <array>
#include <cmath>

namespace vstream::net {

namespace {

constexpr double kEarthRadiusKm = 6371.0;
constexpr double kPi = 3.14159265358979323846;

double deg2rad(double deg) { return deg * kPi / 180.0; }

// A representative set of US metros (population centres + typical CDN PoP
// locations) and international cities.  Coordinates are approximate city
// centres; the analyses only care about distances at 100 km granularity.
const std::array<City, 30> kUsCities = {{
    {"New York", "US", {40.71, -74.01}},
    {"Los Angeles", "US", {34.05, -118.24}},
    {"Chicago", "US", {41.88, -87.63}},
    {"Houston", "US", {29.76, -95.37}},
    {"Phoenix", "US", {33.45, -112.07}},
    {"Philadelphia", "US", {39.95, -75.17}},
    {"San Antonio", "US", {29.42, -98.49}},
    {"San Diego", "US", {32.72, -117.16}},
    {"Dallas", "US", {32.78, -96.80}},
    {"San Jose", "US", {37.34, -121.89}},
    {"Austin", "US", {30.27, -97.74}},
    {"Seattle", "US", {47.61, -122.33}},
    {"Denver", "US", {39.74, -104.99}},
    {"Washington DC", "US", {38.91, -77.04}},
    {"Boston", "US", {42.36, -71.06}},
    {"Atlanta", "US", {33.75, -84.39}},
    {"Miami", "US", {25.76, -80.19}},
    {"Minneapolis", "US", {44.98, -93.27}},
    {"Detroit", "US", {42.33, -83.05}},
    {"Portland", "US", {45.52, -122.68}},
    {"Salt Lake City", "US", {40.76, -111.89}},
    {"St. Louis", "US", {38.63, -90.20}},
    {"Kansas City", "US", {39.10, -94.58}},
    {"Charlotte", "US", {35.23, -80.84}},
    {"Nashville", "US", {36.16, -86.78}},
    {"Pittsburgh", "US", {40.44, -80.00}},
    {"Cleveland", "US", {41.50, -81.69}},
    {"Tampa", "US", {27.95, -82.46}},
    {"Sacramento", "US", {38.58, -121.49}},
    {"Raleigh", "US", {35.78, -78.64}},
}};

const std::array<City, 20> kWorldCities = {{
    {"London", "GB", {51.51, -0.13}},
    {"Frankfurt", "DE", {50.11, 8.68}},
    {"Paris", "FR", {48.86, 2.35}},
    {"Amsterdam", "NL", {52.37, 4.90}},
    {"Madrid", "ES", {40.42, -3.70}},
    {"Rome", "IT", {41.90, 12.50}},
    {"Stockholm", "SE", {59.33, 18.07}},
    {"Warsaw", "PL", {52.23, 21.01}},
    {"Tokyo", "JP", {35.68, 139.69}},
    {"Seoul", "KR", {37.57, 126.98}},
    {"Singapore", "SG", {1.35, 103.82}},
    {"Sydney", "AU", {-33.87, 151.21}},
    {"Mumbai", "IN", {19.08, 72.88}},
    {"Sao Paulo", "BR", {-23.55, -46.63}},
    {"Buenos Aires", "AR", {-34.60, -58.38}},
    {"Mexico City", "MX", {19.43, -99.13}},
    {"Toronto", "CA", {43.65, -79.38}},
    {"Vancouver", "CA", {49.28, -123.12}},
    {"Johannesburg", "ZA", {-26.20, 28.05}},
    {"Tel Aviv", "IL", {32.09, 34.78}},
}};

}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = deg2rad(a.lat_deg);
  const double lat2 = deg2rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(b.lon_deg - a.lon_deg);
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double propagation_rtt_ms(double distance_km) {
  return distance_km / 100.0;  // ~1 ms RTT per 100 km great-circle
}

std::span<const City> us_cities() { return kUsCities; }

std::span<const City> world_cities() { return kWorldCities; }

}  // namespace vstream::net
