#include "cdn/ats_server.h"

#include <algorithm>
#include <cmath>

#include "cdn/serve_pipeline.h"

namespace vstream::cdn {

AtsServer::AtsServer(AtsConfig config, BackendConfig backend)
    : config_(config),
      cache_(config.ram_bytes, config.disk_bytes, config.policy),
      backend_(backend),
      thread_free_at_(std::max(1u, config.threads), 0.0) {}

double AtsServer::load() const { return rate_estimate_; }

sim::Ms AtsServer::earliest_thread_free_ms() const {
  return *std::min_element(thread_free_at_.begin(), thread_free_at_.end());
}

ServerStats& ServerStats::operator+=(const ServerStats& other) {
  requests_served += other.requests_served;
  ram_hits += other.ram_hits;
  disk_hits += other.disk_hits;
  misses += other.misses;
  prefetched_chunks += other.prefetched_chunks;
  collapsed_misses += other.collapsed_misses;
  backend_fetches += other.backend_fetches;
  stale_serves += other.stale_serves;
  backend_errors += other.backend_errors;
  shed_requests += other.shed_requests;
  hedged_fetches += other.hedged_fetches;
  hedge_wins += other.hedge_wins;
  breaker_open_transitions += other.breaker_open_transitions;
  retry_budget_exhausted += other.retry_budget_exhausted;
  swr_serves += other.swr_serves;
  return *this;
}

sim::Ms AtsServer::seek_penalty_from_ms(
    const std::unordered_map<std::uint32_t, sim::Ms>& last_access,
    std::uint32_t video_id, sim::Ms now) const {
  const auto it = last_access.find(video_id);
  if (it == last_access.end()) return config_.seek_max_ms;
  const sim::Ms gap = std::max(0.0, now - it->second);
  // Cold content has fallen out of the OS page cache and sits farther from
  // the disk head's working region; the penalty saturates at seek_max_ms.
  const double coldness = std::min(1.0, gap / config_.seek_cold_after_ms);
  return config_.seek_max_ms * coldness;
}

sim::Ms AtsServer::seek_penalty_ms(std::uint32_t video_id, sim::Ms now) const {
  return seek_penalty_from_ms(last_video_access_, video_id, now);
}

/// Coupled-mode ServeEnv: one live server whose caches, thread pool,
/// breaker and recency evolve across every session that hits it.
struct FleetServeEnv {
  AtsServer& s;
  /// Earliest-free service thread, latched by queue_wait() for finish().
  std::vector<sim::Ms>::iterator thread{};

  const AtsConfig& config() const { return s.config_; }
  const Backend& backend() const { return s.backend_; }
  bool backend_down() const { return s.backend_down_; }
  double backend_slowdown() const { return s.backend_slowdown_; }
  double disk_slowdown() const { return s.disk_slowdown_; }
  double overload_factor() const { return s.overload_factor_; }

  void on_arrival(sim::Ms now) {
    // Load tracking: exponentially decayed arrival rate (requests/sec),
    // the paper's "parallel HTTP requests per second" load proxy.
    if (s.last_arrival_ms_ >= 0.0 && now > s.last_arrival_ms_) {
      const double dt_s = sim::to_seconds(now - s.last_arrival_ms_);
      const double decay = std::exp(-dt_s / 10.0);  // ~10 s horizon
      s.rate_estimate_ =
          s.rate_estimate_ * decay + (1.0 - decay) / std::max(dt_s, 1e-6);
    } else if (s.last_arrival_ms_ < 0.0) {
      s.rate_estimate_ = 0.0;
    }
    s.last_arrival_ms_ = now;
  }

  sim::Ms queue_wait(sim::Ms now) {
    thread = std::min_element(s.thread_free_at_.begin(),
                              s.thread_free_at_.end());
    return std::max(0.0, *thread - now);
  }

  CircuitBreaker& breaker() { return s.breaker_; }
  RetryBudget& budget() { return s.budget_; }
  ServerStats& stats() { return s.stats_; }

  CacheLevel lookup(const ChunkKey& key, std::uint64_t size_bytes) {
    return s.cache_.lookup(key, size_bytes);
  }

  sim::Ms pending_fetch_ms(const ChunkKey& key, sim::Ms now) const {
    const auto inflight = s.inflight_fetches_.find(key);
    if (inflight != s.inflight_fetches_.end() && inflight->second > now) {
      return inflight->second - now;
    }
    return 0.0;
  }

  sim::Ms seek_penalty(std::uint32_t video_id, sim::Ms now) const {
    return s.seek_penalty_ms(video_id, now);
  }

  /// Disk-hit promotion already happened inside the mutating lookup().
  void promote_to_ram(const ChunkKey&) {}

  void admit(const ChunkKey& key, std::uint64_t size_bytes) {
    s.cache_.admit(key, size_bytes);
  }

  bool prefetch_would_miss(const ChunkKey& key, std::uint64_t size_bytes) {
    return s.cache_.lookup(key, size_bytes) == CacheLevel::kMiss;
  }

  void record_inflight(const ChunkKey& key, sim::Ms ready_at, sim::Ms now,
                       bool purge) {
    s.inflight_fetches_[key] = ready_at;
    if (purge && s.inflight_fetches_.size() > 4'096) {
      // Lazy purge of completed fetches.
      std::erase_if(s.inflight_fetches_, [now](const auto& entry) {
        return entry.second <= now;
      });
    }
  }

  void finish(const ServeResult& result, const ChunkKey& key, sim::Ms now) {
    // The thread is occupied from pickup until the first byte is written
    // (asynchronous delivery releases it afterwards).
    *thread = std::max(now, *thread) + result.dopen_ms + result.dread_ms;
    s.last_video_access_[key.video_id] = now;
  }
};

/// Session-isolated ServeEnv: immutable warm archive + the session's own
/// overlay, breaker, budget and recency — serve outcomes become a pure
/// function of (warm state, session history, session RNG substream), the
/// property that makes sharded output partition-invariant.
struct SessionServeEnv {
  const AtsServer& s;
  const TwoLevelCache& warm;
  SessionServerState& session;
  ServerStats& out;

  const AtsConfig& config() const { return s.config_; }
  const Backend& backend() const { return s.backend_; }
  bool backend_down() const { return s.backend_down_; }
  double backend_slowdown() const { return s.backend_slowdown_; }
  double disk_slowdown() const { return s.disk_slowdown_; }
  double overload_factor() const { return s.overload_factor_; }

  void on_arrival(sim::Ms) {}

  /// No accept-queue coupling: the thread pool is shared across sessions,
  /// so the isolated path models D_wait as pure scheduling noise — the
  /// regime the paper observes anyway ("latency is NOT correlated with
  /// load").
  sim::Ms queue_wait(sim::Ms) { return 0.0; }

  CircuitBreaker& breaker() { return session.breaker; }
  RetryBudget& budget() { return session.retry_budget; }
  ServerStats& stats() { return out; }

  /// The session's own promotions/admissions shadow the immutable warm
  /// archive.
  CacheLevel lookup(const ChunkKey& key, std::uint64_t) {
    return session.ram_overlay.contains(key) ? CacheLevel::kRam
                                             : warm.peek(key);
  }

  sim::Ms pending_fetch_ms(const ChunkKey& key, sim::Ms now) const {
    const auto inflight = session.inflight_fetches.find(key);
    if (inflight != session.inflight_fetches.end() &&
        inflight->second > now) {
      return inflight->second - now;
    }
    return 0.0;
  }

  sim::Ms seek_penalty(std::uint32_t video_id, sim::Ms now) const {
    return s.seek_penalty_from_ms(session.last_video_access, video_id, now);
  }

  void promote_to_ram(const ChunkKey& key) {
    session.ram_overlay.insert(key);  // promoted: "fresh in memory"
  }

  /// Admissions go to the boundless per-session overlay (sizes tracked by
  /// the warm archive only).
  void admit(const ChunkKey& key, std::uint64_t) {
    session.ram_overlay.insert(key);
  }

  bool prefetch_would_miss(const ChunkKey& key, std::uint64_t) {
    return !session.ram_overlay.contains(key) &&
           warm.peek(key) == CacheLevel::kMiss;
  }

  void record_inflight(const ChunkKey& key, sim::Ms ready_at, sim::Ms,
                       bool) {
    session.inflight_fetches[key] = ready_at;
  }

  void finish(const ServeResult&, const ChunkKey& key, sim::Ms now) {
    session.last_video_access[key.video_id] = now;
  }
};

ServeResult AtsServer::serve(const ChunkKey& key, std::uint64_t size_bytes,
                             sim::Ms now, sim::Rng& rng,
                             const ServeOptions& opts,
                             const IdealizationPolicy* ideal) {
  FleetServeEnv env{*this};
  return serve_pipeline(env, key, size_bytes, now, rng, opts, ideal);
}

ServeResult AtsServer::serve_isolated(const ChunkKey& key,
                                      std::uint64_t size_bytes, sim::Ms now,
                                      sim::Rng& rng, const TwoLevelCache& warm,
                                      SessionServerState& session,
                                      ServerStats& stats,
                                      const ServeOptions& opts,
                                      const IdealizationPolicy* ideal) const {
  SessionServeEnv env{*this, warm, session, stats};
  return serve_pipeline(env, key, size_bytes, now, rng, opts, ideal);
}

}  // namespace vstream::cdn
