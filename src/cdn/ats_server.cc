#include "cdn/ats_server.h"

#include <algorithm>
#include <cmath>

namespace vstream::cdn {

AtsServer::AtsServer(AtsConfig config, BackendConfig backend)
    : config_(config),
      cache_(config.ram_bytes, config.disk_bytes, config.policy),
      backend_(backend),
      thread_free_at_(std::max(1u, config.threads), 0.0) {}

double AtsServer::load() const { return rate_estimate_; }

sim::Ms AtsServer::earliest_thread_free_ms() const {
  return *std::min_element(thread_free_at_.begin(), thread_free_at_.end());
}

double AtsServer::miss_ratio() const {
  return requests_served_ == 0
             ? 0.0
             : static_cast<double>(misses_) / static_cast<double>(requests_served_);
}

ServerStats& ServerStats::operator+=(const ServerStats& other) {
  requests_served += other.requests_served;
  ram_hits += other.ram_hits;
  disk_hits += other.disk_hits;
  misses += other.misses;
  prefetched_chunks += other.prefetched_chunks;
  collapsed_misses += other.collapsed_misses;
  backend_fetches += other.backend_fetches;
  stale_serves += other.stale_serves;
  backend_errors += other.backend_errors;
  shed_requests += other.shed_requests;
  hedged_fetches += other.hedged_fetches;
  hedge_wins += other.hedge_wins;
  breaker_open_transitions += other.breaker_open_transitions;
  retry_budget_exhausted += other.retry_budget_exhausted;
  swr_serves += other.swr_serves;
  return *this;
}

sim::Ms AtsServer::seek_penalty_from_ms(
    const std::unordered_map<std::uint32_t, sim::Ms>& last_access,
    std::uint32_t video_id, sim::Ms now) const {
  const auto it = last_access.find(video_id);
  if (it == last_access.end()) return config_.seek_max_ms;
  const sim::Ms gap = std::max(0.0, now - it->second);
  // Cold content has fallen out of the OS page cache and sits farther from
  // the disk head's working region; the penalty saturates at seek_max_ms.
  const double coldness = std::min(1.0, gap / config_.seek_cold_after_ms);
  return config_.seek_max_ms * coldness;
}

sim::Ms AtsServer::seek_penalty_ms(std::uint32_t video_id, sim::Ms now) const {
  return seek_penalty_from_ms(last_video_access_, video_id, now);
}

ServeResult AtsServer::serve(const ChunkKey& key, std::uint64_t size_bytes,
                             sim::Ms now, sim::Rng& rng,
                             const ServeOptions& opts) {
  const OverloadConfig& ocfg = config_.overload;
  ServeResult result;

  // ---- load tracking (exponentially decayed arrival rate) ----
  if (last_arrival_ms_ >= 0.0 && now > last_arrival_ms_) {
    const double dt_s = sim::to_seconds(now - last_arrival_ms_);
    const double decay = std::exp(-dt_s / 10.0);  // ~10 s horizon
    rate_estimate_ = rate_estimate_ * decay + (1.0 - decay) / std::max(dt_s, 1e-6);
  } else if (last_arrival_ms_ < 0.0) {
    rate_estimate_ = 0.0;
  }
  last_arrival_ms_ = now;

  // Every arriving request earns a sliver of retry budget (token bucket);
  // retries and hedges spend whole tokens, so fleet-internal retry traffic
  // is capped near retry_budget_ratio of the served load.
  budget_.earn(ocfg);
  result.breaker = breaker_.state(ocfg, now);

  // ---- D_wait: accept-queue time until a service thread picks the
  // request up.  Well-provisioned in production (§4.1: latency is NOT
  // correlated with load), so this is normally just scheduling noise; it
  // only grows when every thread is pinned down (e.g. a backend meltdown
  // holding threads for hundreds of milliseconds each).
  const auto thread = std::min_element(thread_free_at_.begin(),
                                       thread_free_at_.end());
  const sim::Ms queue_wait = std::max(0.0, *thread - now);
  result.dwait_ms =
      queue_wait +
      rng.lognormal_median(config_.wait_median_ms, config_.wait_sigma);

  // ---- D_open: header read + first open attempt ----
  result.dopen_ms = rng.lognormal_median(config_.open_median_ms, config_.open_sigma);

  // ---- priority load shedding (past the headers: priority is known) ----
  // Effective load combines the fault-driven overload factor (flash crowd)
  // with the observed accept-queue delay, mapped so a request waiting
  // shed_queue_delay_ms sees load == shed_watermark.
  double load_factor = overload_factor_;
  if (ocfg.shed_queue_delay_ms > 0.0) {
    load_factor = std::max(
        load_factor,
        ocfg.shed_watermark * queue_wait / ocfg.shed_queue_delay_ms);
  }
  const double shed_p = shed_probability(ocfg, load_factor, opts.priority);
  if (shed_p > 0.0 && rng.bernoulli(shed_p)) {
    // Cheap local 503 before any cache work; the thread is released
    // immediately and the client retries elsewhere or later.
    ++shed_requests_;
    result.shed = true;
    result.failed = true;
    result.dread_ms = rng.lognormal_median(config_.error_response_median_ms,
                                           config_.error_response_sigma);
    return result;
  }

  // ---- cache lookup and D_read ----
  const CacheLevel level = cache_.lookup(key, size_bytes);
  result.level = level;

  // Read-while-writer: an object admitted by a concurrent miss may still
  // be streaming in from the backend; a hit on it cannot produce a first
  // byte before the in-flight fetch does ("many near-simultaneous requests
  // may overwhelm the backend" — collapsing them is the retry timer's job,
  // §4.1-2).
  sim::Ms pending_fetch_ms = 0.0;
  {
    const auto inflight = inflight_fetches_.find(key);
    if (inflight != inflight_fetches_.end() && inflight->second > now) {
      pending_fetch_ms = inflight->second - now;
    }
  }

  switch (level) {
    case CacheLevel::kRam:
      ++ram_hits_;
      result.dread_ms =
          rng.lognormal_median(config_.ram_read_median_ms, config_.ram_read_sigma);
      if (pending_fetch_ms > 0.0) {
        ++collapsed_misses_;
        result.dread_ms += pending_fetch_ms;
      }
      if (backend_down_) {
        result.stale = true;
        ++stale_serves_;
      } else if (result.breaker == BreakerState::kOpen) {
        // Open breaker: serve the cached copy without consulting the
        // origin (stale-while-revalidate); revalidation waits until the
        // breaker closes.
        result.swr = true;
        ++swr_serves_;
      }
      break;
    case CacheLevel::kDisk: {
      ++disk_hits_;
      // First open attempt does not return immediately (object not in RAM):
      // ATS's asynchronous read retries after the open-read-retry timer,
      // then pays the disk read plus a cold-content seek penalty (both
      // stretched while the disk is degraded).
      result.retry_timer_fired = true;
      const sim::Ms disk_read =
          (rng.lognormal_median(config_.disk_read_median_ms,
                                config_.disk_read_sigma) +
           seek_penalty_ms(key.video_id, now)) *
          disk_slowdown_;
      result.dread_ms = config_.open_retry_ms + disk_read + pending_fetch_ms;
      if (pending_fetch_ms > 0.0) ++collapsed_misses_;
      if (backend_down_) {
        result.stale = true;
        ++stale_serves_;
      } else if (result.breaker == BreakerState::kOpen) {
        result.swr = true;
        ++swr_serves_;
      }
      break;
    }
    case CacheLevel::kMiss: {
      if (backend_down_) {
        // Graceful degradation: with the origin unreachable a miss cannot
        // be filled.  Fail fast with a locally generated error — no cache
        // admission, no in-flight fetch — and let the client retry or fail
        // over to a server that still holds the object.  The breaker sees
        // the failure, so a sustained outage trips it and later misses
        // skip straight to the fast-fail below.
        ++misses_;
        ++backend_errors_;
        result.failed = true;
        result.dread_ms = rng.lognormal_median(
            config_.error_response_median_ms, config_.error_response_sigma);
        breaker_.record(ocfg, now, /*success=*/false);
        break;
      }
      ++misses_;
      if (result.breaker == BreakerState::kOpen) {
        // Breaker open and nothing cached: fast-fail instead of queueing
        // on a melted origin.  The client retries or fails over.
        result.failed = true;
        result.dread_ms = rng.lognormal_median(
            config_.error_response_median_ms, config_.error_response_sigma);
        break;
      }
      // Collapsed forwarding: if another request already has this object
      // in flight from the backend, wait for that fetch instead of issuing
      // a duplicate — the backend-protection behaviour the paper ties to
      // the retry timer ("many near-simultaneous requests may overwhelm
      // the backend service", §4.1-2).
      const auto inflight = inflight_fetches_.find(key);
      if (inflight != inflight_fetches_.end() && inflight->second > now) {
        result.retry_timer_fired = true;
        ++collapsed_misses_;
        result.dbe_ms = inflight->second - now;
      } else {
        if (opts.retry && !budget_.spend(ocfg)) {
          // A re-issued request needs a fresh backend fetch but the retry
          // budget is dry: stop the retry storm here with a local error
          // rather than amplify the outage.
          ++retry_budget_exhausted_;
          result.budget_denied = true;
          result.failed = true;
          result.dread_ms = rng.lognormal_median(
              config_.error_response_median_ms, config_.error_response_sigma);
          break;
        }
        // Retry timer fires while the backend request is issued; backend
        // and delivery are pipelined (§2.1) so D_read is dominated by the
        // backend's first byte.
        result.retry_timer_fired = true;
        ++backend_fetches_;
        result.dbe_ms = backend_.fetch_first_byte_ms(rng) * backend_slowdown_;
        // Hedged fetch: once the primary is past the backend's healthy p95
        // first byte, race one hedge against a second origin replica and
        // take whichever responds first.  Budget-bounded, and only while
        // the breaker is fully closed (half-open probes stay single).
        if (ocfg.hedge_enabled && result.breaker == BreakerState::kClosed) {
          const sim::Ms hedge_after = ocfg.hedge_after_ms > 0.0
                                          ? ocfg.hedge_after_ms
                                          : backend_.p95_first_byte_ms();
          if (result.dbe_ms > hedge_after && budget_.spend(ocfg)) {
            ++hedged_fetches_;
            result.hedged = true;
            const sim::Ms hedge_total =
                hedge_after +
                backend_.fetch_first_byte_ms(rng) * backend_slowdown_;
            if (hedge_total < result.dbe_ms) {
              result.dbe_ms = hedge_total;
              result.hedge_won = true;
              ++hedge_wins_;
            }
          }
        }
        breaker_.record(ocfg, now,
                        result.dbe_ms <= ocfg.breaker_latency_threshold_ms);
        inflight_fetches_[key] = now + result.dbe_ms;
        if (inflight_fetches_.size() > 4'096) {
          // Lazy purge of completed fetches.
          std::erase_if(inflight_fetches_, [now](const auto& entry) {
            return entry.second <= now;
          });
        }
      }
      result.dread_ms = config_.open_retry_ms + result.dbe_ms;
      cache_.admit(key, size_bytes);

      // §4.1-2 take-away: after the first miss, fetch the session's next
      // chunks in the background so its later requests hit.  The transfer
      // is asynchronous (off the serving path); the cost is backend load,
      // tracked in backend_requests().  Prefetches are the lowest-priority
      // class: an overloaded server sheds them first, and a non-closed
      // breaker suppresses them entirely.
      if (result.breaker == BreakerState::kClosed) {
        const double prefetch_shed_p =
            shed_probability(ocfg, load_factor, RequestPriority::kPrefetch);
        for (std::uint32_t ahead = 1; ahead <= config_.prefetch_on_miss;
             ++ahead) {
          const ChunkKey next{key.video_id, key.chunk_index + ahead,
                              key.bitrate_kbps};
          if (cache_.lookup(next, size_bytes) == CacheLevel::kMiss) {
            if (prefetch_shed_p > 0.0 && rng.bernoulli(prefetch_shed_p)) {
              ++shed_requests_;  // suppressed speculative fetch
              continue;
            }
            cache_.admit(next, size_bytes);
            ++prefetched_chunks_;
            // The speculative fetch is in flight too: a request arriving
            // before it completes waits for it (read-while-writer), it just
            // skips the backend round trip of its own.
            inflight_fetches_[next] =
                now + backend_.fetch_first_byte_ms(rng) * backend_slowdown_;
          }
        }
      }
      break;
    }
  }

  // The thread is occupied from pickup until the first byte is written
  // (asynchronous delivery releases it afterwards).
  *thread = std::max(now, *thread) + result.dopen_ms + result.dread_ms;

  last_video_access_[key.video_id] = now;
  ++requests_served_;
  return result;
}

ServeResult AtsServer::serve_isolated(const ChunkKey& key,
                                      std::uint64_t size_bytes, sim::Ms now,
                                      sim::Rng& rng, const TwoLevelCache& warm,
                                      SessionServerState& session,
                                      ServerStats& stats,
                                      const ServeOptions& opts) const {
  (void)size_bytes;  // admissions go to the boundless per-session overlay
  const OverloadConfig& ocfg = config_.overload;
  ServeResult result;

  session.retry_budget.earn(ocfg);
  const std::uint64_t trips_before = session.breaker.open_transitions();
  result.breaker = session.breaker.state(ocfg, now);

  // No accept-queue coupling: the thread pool is shared across sessions, so
  // the isolated path models D_wait as pure scheduling noise — the regime
  // the paper observes anyway ("latency is NOT correlated with load").
  result.dwait_ms =
      rng.lognormal_median(config_.wait_median_ms, config_.wait_sigma);
  result.dopen_ms =
      rng.lognormal_median(config_.open_median_ms, config_.open_sigma);

  // Priority load shedding.  Without the cross-session thread pool there is
  // no queue-delay signal, so load comes purely from the fault-driven
  // overload factor — a deterministic function of simulated time, which is
  // what keeps sharded output partition-invariant.
  const double load_factor = overload_factor_;
  const double shed_p = shed_probability(ocfg, load_factor, opts.priority);
  if (shed_p > 0.0 && rng.bernoulli(shed_p)) {
    ++stats.shed_requests;
    result.shed = true;
    result.failed = true;
    result.dread_ms = rng.lognormal_median(config_.error_response_median_ms,
                                           config_.error_response_sigma);
    return result;
  }

  // Cache lookup: the session's own promotions/admissions shadow the
  // immutable warm archive.
  CacheLevel level = session.ram_overlay.contains(key)
                         ? CacheLevel::kRam
                         : warm.peek(key);
  result.level = level;

  // Read-while-writer against the session's own in-flight fetches.
  sim::Ms pending_fetch_ms = 0.0;
  {
    const auto inflight = session.inflight_fetches.find(key);
    if (inflight != session.inflight_fetches.end() && inflight->second > now) {
      pending_fetch_ms = inflight->second - now;
    }
  }

  switch (level) {
    case CacheLevel::kRam:
      ++stats.ram_hits;
      result.dread_ms = rng.lognormal_median(config_.ram_read_median_ms,
                                             config_.ram_read_sigma);
      if (pending_fetch_ms > 0.0) {
        ++stats.collapsed_misses;
        result.dread_ms += pending_fetch_ms;
      }
      if (backend_down_) {
        result.stale = true;
        ++stats.stale_serves;
      } else if (result.breaker == BreakerState::kOpen) {
        result.swr = true;
        ++stats.swr_serves;
      }
      break;
    case CacheLevel::kDisk: {
      ++stats.disk_hits;
      result.retry_timer_fired = true;
      const sim::Ms disk_read =
          (rng.lognormal_median(config_.disk_read_median_ms,
                                config_.disk_read_sigma) +
           seek_penalty_from_ms(session.last_video_access, key.video_id, now)) *
          disk_slowdown_;
      result.dread_ms = config_.open_retry_ms + disk_read + pending_fetch_ms;
      if (pending_fetch_ms > 0.0) ++stats.collapsed_misses;
      if (backend_down_) {
        result.stale = true;
        ++stats.stale_serves;
      } else if (result.breaker == BreakerState::kOpen) {
        result.swr = true;
        ++stats.swr_serves;
      }
      session.ram_overlay.insert(key);  // promoted: "fresh in memory"
      break;
    }
    case CacheLevel::kMiss: {
      if (backend_down_) {
        ++stats.misses;
        ++stats.backend_errors;
        result.failed = true;
        result.dread_ms = rng.lognormal_median(
            config_.error_response_median_ms, config_.error_response_sigma);
        session.breaker.record(ocfg, now, /*success=*/false);
        break;
      }
      ++stats.misses;
      if (result.breaker == BreakerState::kOpen) {
        result.failed = true;
        result.dread_ms = rng.lognormal_median(
            config_.error_response_median_ms, config_.error_response_sigma);
        break;
      }
      const auto inflight = session.inflight_fetches.find(key);
      if (inflight != session.inflight_fetches.end() &&
          inflight->second > now) {
        result.retry_timer_fired = true;
        ++stats.collapsed_misses;
        result.dbe_ms = inflight->second - now;
      } else {
        if (opts.retry && !session.retry_budget.spend(ocfg)) {
          ++stats.retry_budget_exhausted;
          result.budget_denied = true;
          result.failed = true;
          result.dread_ms = rng.lognormal_median(
              config_.error_response_median_ms, config_.error_response_sigma);
          break;
        }
        result.retry_timer_fired = true;
        ++stats.backend_fetches;
        result.dbe_ms = backend_.fetch_first_byte_ms(rng) * backend_slowdown_;
        if (ocfg.hedge_enabled && result.breaker == BreakerState::kClosed) {
          const sim::Ms hedge_after = ocfg.hedge_after_ms > 0.0
                                          ? ocfg.hedge_after_ms
                                          : backend_.p95_first_byte_ms();
          if (result.dbe_ms > hedge_after && session.retry_budget.spend(ocfg)) {
            ++stats.hedged_fetches;
            result.hedged = true;
            const sim::Ms hedge_total =
                hedge_after +
                backend_.fetch_first_byte_ms(rng) * backend_slowdown_;
            if (hedge_total < result.dbe_ms) {
              result.dbe_ms = hedge_total;
              result.hedge_won = true;
              ++stats.hedge_wins;
            }
          }
        }
        session.breaker.record(
            ocfg, now, result.dbe_ms <= ocfg.breaker_latency_threshold_ms);
        session.inflight_fetches[key] = now + result.dbe_ms;
      }
      result.dread_ms = config_.open_retry_ms + result.dbe_ms;
      session.ram_overlay.insert(key);

      if (result.breaker == BreakerState::kClosed) {
        const double prefetch_shed_p =
            shed_probability(ocfg, load_factor, RequestPriority::kPrefetch);
        for (std::uint32_t ahead = 1; ahead <= config_.prefetch_on_miss;
             ++ahead) {
          const ChunkKey next{key.video_id, key.chunk_index + ahead,
                              key.bitrate_kbps};
          if (!session.ram_overlay.contains(next) &&
              warm.peek(next) == CacheLevel::kMiss) {
            if (prefetch_shed_p > 0.0 && rng.bernoulli(prefetch_shed_p)) {
              ++stats.shed_requests;
              continue;
            }
            session.ram_overlay.insert(next);
            ++stats.prefetched_chunks;
            session.inflight_fetches[next] =
                now + backend_.fetch_first_byte_ms(rng) * backend_slowdown_;
          }
        }
      }
      break;
    }
  }

  stats.breaker_open_transitions +=
      session.breaker.open_transitions() - trips_before;
  session.last_video_access[key.video_id] = now;
  ++stats.requests_served;
  return result;
}

}  // namespace vstream::cdn
