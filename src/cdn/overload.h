// Server-side overload protection: the backend-protection layer the paper
// only hints at.
//
// The paper frames the CDN's own mechanisms as *backend protection* — the
// 10 ms open-read-retry timer exists "to protect the backend" (§4.1-2) and
// server latency under cache misses dominates startup delay (Fig. 5).  The
// production stack therefore needs more than failover and stale serving:
//
//   * a per-server CIRCUIT BREAKER around backend fetches (closed -> open
//     on error/latency breaches -> half-open probe).  While open, requests
//     for cached objects are served stale-while-revalidate (no origin
//     consult) and uncached misses fast-fail instead of queueing on a
//     melted origin;
//   * a RETRY BUDGET (token bucket, ~10% of requests) capping
//     fleet-internal retries and hedges, so retry storms cannot amplify an
//     outage;
//   * HEDGED backend fetches: once the primary fetch is past the backend's
//     p95 first byte, a single hedge goes to a second origin replica and
//     the first response wins (bounded by the retry budget);
//   * PRIORITY LOAD SHEDDING: past a load watermark a server sheds
//     low-priority work first — prefetches, then mid-session chunks with
//     healthy client buffers — and never first chunks (startup latency is
//     the paper's headline QoE metric, Fig. 4).
//
// Determinism: the sharded engine requires serve outcomes to be a pure
// function of (immutable warm state, the session's own history, the
// session's RNG substream).  CircuitBreaker and RetryBudget are therefore
// plain state holders configured per call — AtsServer keeps one of each
// for the coupled serve() path, and every session's per-server overlay
// (SessionServerState) keeps its own pair for serve_isolated(), fed only
// by that session's observed backend outcomes.  Server-level overload
// pressure comes from fault-driven epochs (FaultKind::kOverload), which
// are pure functions of simulated time and identical on every shard.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace vstream::cdn {

/// Circuit-breaker state, in the classic closed -> open -> half-open cycle.
enum class BreakerState : std::uint8_t {
  kClosed,    ///< backend healthy; fetches flow
  kOpen,      ///< backend protected; SWR hits, fast-fail misses
  kHalfOpen,  ///< probing: limited fetches allowed to test recovery
};

const char* to_string(BreakerState state);

/// Request priority for load shedding, most to least protected.
enum class RequestPriority : std::uint8_t {
  kFirstChunk,  ///< session startup: never shed (Fig. 4's QoE anchor)
  kLowBuffer,   ///< client close to a stall: shed only under deep overload
  kSteady,      ///< mid-session chunk with a healthy client buffer
  kPrefetch,    ///< speculative backend work: first to go
};

const char* to_string(RequestPriority priority);

struct OverloadConfig {
  // The VSTREAM_* override knobs below are resolved by
  // engine::resolve_overload_env using the shared strict parser in
  // sim/env_util.h (unset: keep default; set but invalid: refuse to run).

  // ---- circuit breaker around backend fetches ----
  bool breaker_enabled = true;
  /// A backend first byte slower than this counts as a breaker failure
  /// (healthy p99.9 is well under it; a browned-out origin's median is
  /// well over it).  VSTREAM_BREAKER_THRESHOLD overrides.
  sim::Ms breaker_latency_threshold_ms = 200.0;
  /// Trip when the failure share of the outcome window reaches this.
  double breaker_failure_ratio = 0.5;
  std::uint32_t breaker_window = 8;       ///< sliding window of outcomes
  std::uint32_t breaker_min_samples = 4;  ///< evidence needed to trip
  sim::Ms breaker_open_ms = 5'000.0;      ///< open dwell before half-open
  /// Consecutive probe successes needed to close from half-open.
  std::uint32_t breaker_probe_successes = 2;

  // ---- retry budget (token bucket) ----
  /// Tokens earned per served request; ~10% of traffic may be retries or
  /// hedges.  VSTREAM_RETRY_BUDGET (in percent) overrides.
  double retry_budget_ratio = 0.10;
  double retry_budget_cap = 8.0;      ///< bucket depth
  double retry_budget_initial = 4.0;  ///< tokens at cold start

  // ---- hedged backend fetches ----
  bool hedge_enabled = true;
  /// Issue the hedge when the primary fetch is past this; 0 resolves to
  /// the backend's analytic p95 first byte (Backend::p95_first_byte_ms).
  sim::Ms hedge_after_ms = 0.0;

  // ---- priority load shedding ----
  /// Load factor (multiples of nominal capacity) above which shedding
  /// starts.  VSTREAM_SHED_WATERMARK (in percent) overrides.
  double shed_watermark = 1.25;
  /// Coupled mode only: queue-delay estimate that maps to the watermark
  /// (a request waiting this long sees load factor == shed_watermark).
  sim::Ms shed_queue_delay_ms = 50.0;
};

/// Shed probability for a request of `priority` at `load_factor` (multiples
/// of nominal capacity).  0 at or below the watermark.  Above it, the
/// excess share 1 - watermark/load is turned away in priority order:
/// prefetches go entirely, steady mid-session chunks carry the bulk,
/// low-buffer chunks only under deep (> 2x watermark) overload, and first
/// chunks are never shed.  Monotone in load_factor for every class.
double shed_probability(const OverloadConfig& config, double load_factor,
                        RequestPriority priority);

/// Deterministic breaker state machine around one server's backend fetches.
/// Holds no configuration: callers pass the OverloadConfig on every call,
/// so the same default-constructed object works as the server-level breaker
/// (coupled mode) and as a per-session overlay member (isolated mode).
class CircuitBreaker {
 public:
  /// Current state at `now`, advancing open -> half-open once the open
  /// dwell has passed.
  BreakerState state(const OverloadConfig& config, sim::Ms now);

  /// Same answer as state() without mutating (for const observers, e.g.
  /// Fleet health scoring).
  BreakerState peek_state(const OverloadConfig& config, sim::Ms now) const;

  /// True if a backend fetch may be issued at `now`: closed, or half-open
  /// (the probe that will close or re-open the breaker).
  bool allow_fetch(const OverloadConfig& config, sim::Ms now);

  /// Record a fetch outcome.  Failures are errors or first bytes past
  /// breaker_latency_threshold_ms; the caller classifies.
  void record(const OverloadConfig& config, sim::Ms now, bool success);

  /// Closed/half-open -> open transitions so far (telemetry).
  std::uint64_t open_transitions() const { return open_transitions_; }

 private:
  void trip(sim::Ms now);

  BreakerState state_ = BreakerState::kClosed;
  sim::Ms opened_at_ms_ = 0.0;
  std::uint32_t window_fill_ = 0;
  std::uint32_t window_failures_ = 0;
  std::uint64_t outcome_bits_ = 0;  ///< bit i = i-th newest outcome failed
  std::uint32_t probe_successes_ = 0;
  std::uint64_t open_transitions_ = 0;
};

/// Token-bucket retry budget: every served request earns a fraction of a
/// token; each fleet-internal retry or hedge spends one.  Like the breaker,
/// it is configured per call so one type serves both execution modes.
class RetryBudget {
 public:
  /// Accrue the per-request earn (call once per arriving request).
  void earn(const OverloadConfig& config);

  /// Take one token for a retry/hedge; false when the bucket is dry.
  bool spend(const OverloadConfig& config);

  double tokens(const OverloadConfig& config) const;

 private:
  /// Negative = not yet initialized from config.retry_budget_initial (the
  /// overlay is default-constructed before it ever sees a config).
  double tokens_ = -1.0;
};

}  // namespace vstream::cdn
