#include "cdn/backend.h"

#include <cmath>

namespace vstream::cdn {

sim::Ms Backend::fetch_first_byte_ms(sim::Rng& rng) const {
  sim::Ms service =
      rng.lognormal_median(config_.service_median_ms, config_.service_sigma);
  if (rng.bernoulli(config_.hiccup_probability)) {
    service *= config_.hiccup_multiplier;
  }
  return config_.rtt_ms + service;
}

sim::Ms Backend::p95_first_byte_ms() const {
  // Log-normal quantile: median * exp(z_0.95 * sigma), z_0.95 = 1.6449.
  return config_.rtt_ms +
         config_.service_median_ms * std::exp(1.6449 * config_.service_sigma);
}

}  // namespace vstream::cdn
