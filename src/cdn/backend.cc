#include "cdn/backend.h"

namespace vstream::cdn {

sim::Ms Backend::fetch_first_byte_ms(sim::Rng& rng) const {
  sim::Ms service =
      rng.lognormal_median(config_.service_median_ms, config_.service_sigma);
  if (rng.bernoulli(config_.hiccup_probability)) {
    service *= config_.hiccup_multiplier;
  }
  return config_.rtt_ms + service;
}

}  // namespace vstream::cdn
