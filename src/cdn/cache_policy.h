// Pluggable cache eviction policies.
//
// The paper's CDN uses ATS's default LRU and the authors recommend
// popularity-aware alternatives ("GD-size or perfect-LFU", §4.1-1 take-away,
// citing Breslau et al.).  We implement all three behind one interface so
// the ablation bench can compare hit rates on the same workload.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cdn/chunk.h"

namespace vstream::cdn {

class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  /// A resident object was inserted (must not already be resident).
  virtual void on_insert(const ChunkKey& key, std::uint64_t size_bytes) = 0;

  /// A resident object was accessed.  Returns whether the policy tracks the
  /// object (i.e. it is resident); non-resident keys are a tolerated no-op.
  /// The return value lets the cache answer "resident?" and update recency
  /// with a single hash lookup on the hit path.
  virtual bool on_access(const ChunkKey& key) = 0;

  /// Pick the resident object to evict next.  Precondition: non-empty.
  virtual ChunkKey choose_victim() = 0;

  /// A resident object was removed (eviction or invalidation).
  virtual void on_evict(const ChunkKey& key) = 0;

  /// Capacity hint: the caller expects about this many resident objects.
  virtual void reserve(std::size_t /*expected_objects*/) {}

  virtual std::string name() const = 0;
};

/// Classic LRU over resident objects (ATS default).
///
/// The recency list is intrusive over a slot arena (vector + free list)
/// instead of a std::list: steady-state serving churns the order on every
/// hit and eviction, and per-node heap allocation dominated the policy's
/// cost in profiles.  Victim order is identical to the std::list version.
class LruPolicy final : public CachePolicy {
 public:
  void on_insert(const ChunkKey& key, std::uint64_t size_bytes) override;
  bool on_access(const ChunkKey& key) override;
  ChunkKey choose_victim() override;
  void on_evict(const ChunkKey& key) override;
  void reserve(std::size_t expected_objects) override;
  std::string name() const override { return "lru"; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Node {
    ChunkKey key;
    std::uint32_t prev;
    std::uint32_t next;
  };

  std::uint32_t acquire_node();
  void unlink(std::uint32_t index);
  void link_front(std::uint32_t index);

  std::vector<Node> nodes_;   // arena; free slots chained through `next`
  std::uint32_t head_ = kNil;  // most recent
  std::uint32_t tail_ = kNil;  // least recent
  std::uint32_t free_head_ = kNil;
  std::unordered_map<ChunkKey, std::uint32_t, ChunkKeyHash> position_;
};

/// Perfect LFU: frequency counts persist across evictions (Breslau et al.),
/// so a once-popular object re-enters with its full history.
class PerfectLfuPolicy final : public CachePolicy {
 public:
  void on_insert(const ChunkKey& key, std::uint64_t size_bytes) override;
  bool on_access(const ChunkKey& key) override;
  ChunkKey choose_victim() override;
  void on_evict(const ChunkKey& key) override;
  std::string name() const override { return "perfect-lfu"; }

 private:
  // Resident set ordered by (frequency, insertion sequence) for O(log n)
  // victim selection; history_ keeps counts for evicted objects too.
  struct Entry {
    std::uint64_t freq;
    std::uint64_t seq;
    friend auto operator<=>(const Entry&, const Entry&) = default;
  };
  std::map<Entry, ChunkKey> by_freq_;
  std::unordered_map<ChunkKey, Entry, ChunkKeyHash> resident_;
  std::unordered_map<ChunkKey, std::uint64_t, ChunkKeyHash> history_;
  std::uint64_t next_seq_ = 0;
};

/// GreedyDual-Size with uniform fetch cost: priority = L + 1/size, evict the
/// minimum and raise the global ageing term L to the victim's priority.
class GdSizePolicy final : public CachePolicy {
 public:
  void on_insert(const ChunkKey& key, std::uint64_t size_bytes) override;
  bool on_access(const ChunkKey& key) override;
  ChunkKey choose_victim() override;
  void on_evict(const ChunkKey& key) override;
  std::string name() const override { return "gd-size"; }

 private:
  struct Entry {
    double priority;
    std::uint64_t seq;
    friend auto operator<=>(const Entry&, const Entry&) = default;
  };
  double inflation_ = 0.0;  // the "L" ageing term
  std::map<Entry, ChunkKey> by_priority_;
  std::unordered_map<ChunkKey, Entry, ChunkKeyHash> resident_;
  std::unordered_map<ChunkKey, std::uint64_t, ChunkKeyHash> sizes_;
  std::uint64_t next_seq_ = 0;
};

enum class PolicyKind { kLru, kPerfectLfu, kGdSize };

std::unique_ptr<CachePolicy> make_policy(PolicyKind kind);
const char* to_string(PolicyKind kind);

}  // namespace vstream::cdn
