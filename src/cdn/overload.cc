#include "cdn/overload.h"

#include <algorithm>

namespace vstream::cdn {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

const char* to_string(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kFirstChunk: return "first-chunk";
    case RequestPriority::kLowBuffer: return "low-buffer";
    case RequestPriority::kSteady: return "steady";
    case RequestPriority::kPrefetch: return "prefetch";
  }
  return "unknown";
}

double shed_probability(const OverloadConfig& config, double load_factor,
                        RequestPriority priority) {
  if (load_factor <= config.shed_watermark || config.shed_watermark <= 0.0) {
    return 0.0;
  }
  // Share of the offered load beyond the watermark: shedding exactly this
  // fraction keeps admitted work flat at the watermark (goodput plateaus
  // instead of collapsing).
  const double excess = 1.0 - config.shed_watermark / load_factor;
  switch (priority) {
    case RequestPriority::kFirstChunk:
      return 0.0;
    case RequestPriority::kPrefetch:
      return 1.0;
    case RequestPriority::kSteady:
      // Steady chunks absorb more than their share so lower-priority-only
      // shedding suffices for moderate overloads.
      return std::min(1.0, 1.5 * excess);
    case RequestPriority::kLowBuffer:
      // A client about to stall keeps its chunk until the server is past
      // twice the watermark (excess > 0.5), then sheds progressively.
      return std::clamp(2.0 * (excess - 0.5), 0.0, 1.0);
  }
  return 0.0;
}

void CircuitBreaker::trip(sim::Ms now) {
  state_ = BreakerState::kOpen;
  opened_at_ms_ = now;
  window_fill_ = 0;
  window_failures_ = 0;
  outcome_bits_ = 0;
  probe_successes_ = 0;
  ++open_transitions_;
}

BreakerState CircuitBreaker::state(const OverloadConfig& config, sim::Ms now) {
  if (!config.breaker_enabled) return BreakerState::kClosed;
  if (state_ == BreakerState::kOpen &&
      now >= opened_at_ms_ + config.breaker_open_ms) {
    state_ = BreakerState::kHalfOpen;
    probe_successes_ = 0;
  }
  return state_;
}

BreakerState CircuitBreaker::peek_state(const OverloadConfig& config,
                                        sim::Ms now) const {
  if (!config.breaker_enabled) return BreakerState::kClosed;
  if (state_ == BreakerState::kOpen &&
      now >= opened_at_ms_ + config.breaker_open_ms) {
    return BreakerState::kHalfOpen;
  }
  return state_;
}

bool CircuitBreaker::allow_fetch(const OverloadConfig& config, sim::Ms now) {
  return state(config, now) != BreakerState::kOpen;
}

void CircuitBreaker::record(const OverloadConfig& config, sim::Ms now,
                            bool success) {
  if (!config.breaker_enabled) return;
  switch (state(config, now)) {
    case BreakerState::kOpen:
      // A late outcome from a fetch issued before the trip; the open
      // breaker has already made its decision.
      break;
    case BreakerState::kHalfOpen:
      if (!success) {
        trip(now);  // probe failed: back to open for another dwell
      } else if (++probe_successes_ >= config.breaker_probe_successes) {
        state_ = BreakerState::kClosed;  // recovered; fresh window
        window_fill_ = 0;
        window_failures_ = 0;
        outcome_bits_ = 0;
      }
      break;
    case BreakerState::kClosed: {
      const std::uint32_t window = std::max(1u, std::min(config.breaker_window, 64u));
      if (window_fill_ >= window) {
        // Evict the oldest outcome from the ring.
        if ((outcome_bits_ >> (window - 1)) & 1ull) --window_failures_;
        outcome_bits_ = (outcome_bits_ << 1) & ((window < 64 ? (1ull << window) : 0ull) - 1ull);
      } else {
        outcome_bits_ <<= 1;
        ++window_fill_;
      }
      if (!success) {
        outcome_bits_ |= 1ull;
        ++window_failures_;
      }
      if (window_fill_ >= config.breaker_min_samples &&
          static_cast<double>(window_failures_) >=
              config.breaker_failure_ratio * static_cast<double>(window_fill_)) {
        trip(now);
      }
      break;
    }
  }
}

void RetryBudget::earn(const OverloadConfig& config) {
  if (tokens_ < 0.0) tokens_ = config.retry_budget_initial;
  tokens_ = std::min(config.retry_budget_cap, tokens_ + config.retry_budget_ratio);
}

bool RetryBudget::spend(const OverloadConfig& config) {
  if (tokens_ < 0.0) tokens_ = config.retry_budget_initial;
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double RetryBudget::tokens(const OverloadConfig& config) const {
  return tokens_ < 0.0 ? config.retry_budget_initial : tokens_;
}

}  // namespace vstream::cdn
