// The ONE serve path.
//
// AtsServer::serve (coupled mode: one live fleet whose caches, queues and
// recency evolve across sessions) and AtsServer::serve_isolated (sharded
// mode: outcomes are a pure function of the immutable warm archive, the
// session's own history and its private RNG substream) used to be ~200
// lines each of branch-for-branch mirrored logic that had to be edited in
// lockstep.  serve_pipeline() is that logic written once; the two modes
// differ only in the ServeEnv backend they plug in.
//
// A ServeEnv supplies, in pipeline terms:
//
//   config(), backend()             — immutable server configuration
//   backend_down(), backend_slowdown(), disk_slowdown(), overload_factor()
//                                   — fault-injector degradation flags
//   on_arrival(now)                 — load tracking (coupled: decayed
//                                     arrival-rate estimate; isolated: none)
//   queue_wait(now)                 — accept-queue delay (coupled: earliest
//                                     thread-pool slot, latched for
//                                     finish(); isolated: 0 — D_wait is
//                                     scheduling noise, §4.1)
//   breaker(), budget(), stats()    — overload-protection state + counters
//                                     (coupled: the server's; isolated: the
//                                     session's private view)
//   lookup(key, bytes)              — cache probe (coupled: mutating
//                                     two-level lookup with promotion;
//                                     isolated: session overlay shadowing
//                                     the immutable warm archive)
//   pending_fetch_ms(key, now)      — read-while-writer: time until an
//                                     in-flight fetch of this object lands
//   seek_penalty(video, now)        — cold-content disk seek from recency
//   promote_to_ram(key)             — disk hit promotion (coupled: done by
//                                     lookup(); isolated: overlay insert)
//   admit(key, bytes)               — cache admission on a miss
//   prefetch_would_miss(key, bytes) — would a speculative fetch miss?
//   record_inflight(key, ready, now, purge)
//                                   — register an in-flight backend fetch
//                                     (coupled purges completed entries
//                                     past 4096 when `purge`)
//   finish(result, key, now)        — post-serve bookkeeping: thread-pool
//                                     occupancy (coupled) and video recency
//
// Determinism contract: for a null (or kNone) IdealizationPolicy the
// pipeline performs EXACTLY the RNG draws of the pre-unification bodies,
// in the same order — tests/engine/serve_equivalence_test.cc pins all five
// exported CSV streams of both modes to pre-refactor golden hashes.
// Idealizations (see cdn/idealization.h) may skip draws; replay output is
// then deterministic per policy, just no longer byte-comparable to the
// factual run.
#pragma once

#include <algorithm>

#include "cdn/ats_server.h"
#include "cdn/idealization.h"
#include "cdn/overload.h"

namespace vstream::cdn {

template <class Env>
ServeResult serve_pipeline(Env& env, const ChunkKey& key,
                           std::uint64_t size_bytes, sim::Ms now,
                           sim::Rng& rng, const ServeOptions& opts,
                           const IdealizationPolicy* ideal) {
  const AtsConfig& config = env.config();
  const OverloadConfig& ocfg = config.overload;
  const bool ideal_cache = ideal != nullptr && ideal->zero_latency_cache();
  const bool ideal_backend = ideal != nullptr && ideal->instant_backend();
  const bool no_overload = ideal != nullptr && ideal->no_overload();
  const bool backend_down = !ideal_backend && env.backend_down();
  ServeResult result;

  env.on_arrival(now);

  // Every arriving request earns a sliver of retry budget (token bucket);
  // retries and hedges spend whole tokens, so fleet-internal retry traffic
  // is capped near retry_budget_ratio of the served load.
  env.budget().earn(ocfg);
  const std::uint64_t trips_before = env.breaker().open_transitions();
  result.breaker = env.breaker().state(ocfg, now);
  if (no_overload) result.breaker = BreakerState::kClosed;

  // ---- D_wait: accept-queue time until a service thread picks the
  // request up.  Well-provisioned in production (§4.1: latency is NOT
  // correlated with load), so this is normally just scheduling noise; it
  // only grows when every thread is pinned down (e.g. a backend meltdown
  // holding threads for hundreds of milliseconds each).
  const sim::Ms queue_wait = env.queue_wait(now);
  result.dwait_ms =
      queue_wait +
      rng.lognormal_median(config.wait_median_ms, config.wait_sigma);

  // ---- D_open: header read + first open attempt ----
  result.dopen_ms =
      rng.lognormal_median(config.open_median_ms, config.open_sigma);

  // ---- priority load shedding (past the headers: priority is known) ----
  // Effective load combines the fault-driven overload factor (flash crowd)
  // with the observed accept-queue delay, mapped so a request waiting
  // shed_queue_delay_ms sees load == shed_watermark.  (With the isolated
  // env's zero queue wait this degenerates to the overload factor alone —
  // a deterministic function of simulated time, which is what keeps
  // sharded output partition-invariant.)
  double load_factor = env.overload_factor();
  if (ocfg.shed_queue_delay_ms > 0.0) {
    load_factor = std::max(
        load_factor, ocfg.shed_watermark * queue_wait / ocfg.shed_queue_delay_ms);
  }
  if (no_overload) load_factor = 1.0;
  const double shed_p =
      no_overload ? 0.0 : shed_probability(ocfg, load_factor, opts.priority);
  if (shed_p > 0.0 && rng.bernoulli(shed_p)) {
    // Cheap local 503 before any cache work; the thread is released
    // immediately (finish() is skipped) and the client retries elsewhere.
    ++env.stats().shed_requests;
    result.shed = true;
    result.failed = true;
    result.dread_ms = rng.lognormal_median(config.error_response_median_ms,
                                           config.error_response_sigma);
    return result;
  }

  // ---- cache lookup and D_read ----
  const CacheLevel level =
      ideal_cache ? CacheLevel::kRam : env.lookup(key, size_bytes);
  result.level = level;

  // Read-while-writer: an object admitted by a concurrent miss may still
  // be streaming in from the backend; a hit on it cannot produce a first
  // byte before the in-flight fetch does ("many near-simultaneous requests
  // may overwhelm the backend" — collapsing them is the retry timer's job,
  // §4.1-2).  An ideal cache always has the bytes resident.
  const sim::Ms pending_fetch_ms =
      ideal_cache ? 0.0 : env.pending_fetch_ms(key, now);

  switch (level) {
    case CacheLevel::kRam:
      ++env.stats().ram_hits;
      result.dread_ms = rng.lognormal_median(config.ram_read_median_ms,
                                             config.ram_read_sigma);
      if (pending_fetch_ms > 0.0) {
        ++env.stats().collapsed_misses;
        result.dread_ms += pending_fetch_ms;
      }
      if (backend_down) {
        result.stale = true;
        ++env.stats().stale_serves;
      } else if (result.breaker == BreakerState::kOpen) {
        // Open breaker: serve the cached copy without consulting the
        // origin (stale-while-revalidate); revalidation waits until the
        // breaker closes.
        result.swr = true;
        ++env.stats().swr_serves;
      }
      break;
    case CacheLevel::kDisk: {
      ++env.stats().disk_hits;
      // First open attempt does not return immediately (object not in RAM):
      // ATS's asynchronous read retries after the open-read-retry timer,
      // then pays the disk read plus a cold-content seek penalty (both
      // stretched while the disk is degraded).
      result.retry_timer_fired = true;
      const sim::Ms disk_read =
          (rng.lognormal_median(config.disk_read_median_ms,
                                config.disk_read_sigma) +
           env.seek_penalty(key.video_id, now)) *
          env.disk_slowdown();
      result.dread_ms = config.open_retry_ms + disk_read + pending_fetch_ms;
      if (pending_fetch_ms > 0.0) ++env.stats().collapsed_misses;
      if (backend_down) {
        result.stale = true;
        ++env.stats().stale_serves;
      } else if (result.breaker == BreakerState::kOpen) {
        result.swr = true;
        ++env.stats().swr_serves;
      }
      env.promote_to_ram(key);
      break;
    }
    case CacheLevel::kMiss: {
      if (backend_down) {
        // Graceful degradation: with the origin unreachable a miss cannot
        // be filled.  Fail fast with a locally generated error — no cache
        // admission, no in-flight fetch — and let the client retry or fail
        // over to a server that still holds the object.  The breaker sees
        // the failure, so a sustained outage trips it and later misses
        // skip straight to the fast-fail below.
        ++env.stats().misses;
        ++env.stats().backend_errors;
        result.failed = true;
        result.dread_ms = rng.lognormal_median(
            config.error_response_median_ms, config.error_response_sigma);
        env.breaker().record(ocfg, now, /*success=*/false);
        break;
      }
      ++env.stats().misses;
      if (result.breaker == BreakerState::kOpen) {
        // Breaker open and nothing cached: fast-fail instead of queueing
        // on a melted origin.  The client retries or fails over.
        result.failed = true;
        result.dread_ms = rng.lognormal_median(
            config.error_response_median_ms, config.error_response_sigma);
        break;
      }
      // Collapsed forwarding: if another request already has this object
      // in flight from the backend, wait for that fetch instead of issuing
      // a duplicate — the backend-protection behaviour the paper ties to
      // the retry timer ("many near-simultaneous requests may overwhelm
      // the backend service", §4.1-2).
      if (pending_fetch_ms > 0.0) {
        result.retry_timer_fired = true;
        ++env.stats().collapsed_misses;
        result.dbe_ms = pending_fetch_ms;
      } else {
        if (opts.retry && !(no_overload || env.budget().spend(ocfg))) {
          // A re-issued request needs a fresh backend fetch but the retry
          // budget is dry: stop the retry storm here with a local error
          // rather than amplify the outage.
          ++env.stats().retry_budget_exhausted;
          result.budget_denied = true;
          result.failed = true;
          result.dread_ms = rng.lognormal_median(
              config.error_response_median_ms, config.error_response_sigma);
          break;
        }
        // Retry timer fires while the backend request is issued; backend
        // and delivery are pipelined (§2.1) so D_read is dominated by the
        // backend's first byte.
        result.retry_timer_fired = true;
        ++env.stats().backend_fetches;
        result.dbe_ms = ideal_backend
                            ? 0.0
                            : env.backend().fetch_first_byte_ms(rng) *
                                  env.backend_slowdown();
        // Hedged fetch: once the primary is past the backend's healthy p95
        // first byte, race one hedge against a second origin replica and
        // take whichever responds first.  Budget-bounded, and only while
        // the breaker is fully closed (half-open probes stay single).
        if (ocfg.hedge_enabled && result.breaker == BreakerState::kClosed) {
          const sim::Ms hedge_after = ocfg.hedge_after_ms > 0.0
                                          ? ocfg.hedge_after_ms
                                          : env.backend().p95_first_byte_ms();
          if (result.dbe_ms > hedge_after &&
              (no_overload || env.budget().spend(ocfg))) {
            ++env.stats().hedged_fetches;
            result.hedged = true;
            const sim::Ms hedge_total =
                hedge_after + env.backend().fetch_first_byte_ms(rng) *
                                  env.backend_slowdown();
            if (hedge_total < result.dbe_ms) {
              result.dbe_ms = hedge_total;
              result.hedge_won = true;
              ++env.stats().hedge_wins;
            }
          }
        }
        env.breaker().record(
            ocfg, now, result.dbe_ms <= ocfg.breaker_latency_threshold_ms);
        env.record_inflight(key, now + result.dbe_ms, now, /*purge=*/true);
      }
      result.dread_ms = config.open_retry_ms + result.dbe_ms;
      env.admit(key, size_bytes);

      // §4.1-2 take-away: after the first miss, fetch the session's next
      // chunks in the background so its later requests hit.  The transfer
      // is asynchronous (off the serving path); the cost is backend load,
      // tracked in backend_requests().  Prefetches are the lowest-priority
      // class: an overloaded server sheds them first, and a non-closed
      // breaker suppresses them entirely.
      if (result.breaker == BreakerState::kClosed) {
        const double prefetch_shed_p =
            no_overload
                ? 0.0
                : shed_probability(ocfg, load_factor, RequestPriority::kPrefetch);
        for (std::uint32_t ahead = 1; ahead <= config.prefetch_on_miss;
             ++ahead) {
          const ChunkKey next{key.video_id, key.chunk_index + ahead,
                              key.bitrate_kbps};
          if (env.prefetch_would_miss(next, size_bytes)) {
            if (prefetch_shed_p > 0.0 && rng.bernoulli(prefetch_shed_p)) {
              ++env.stats().shed_requests;  // suppressed speculative fetch
              continue;
            }
            env.admit(next, size_bytes);
            ++env.stats().prefetched_chunks;
            // The speculative fetch is in flight too: a request arriving
            // before it completes waits for it (read-while-writer), it just
            // skips the backend round trip of its own.
            env.record_inflight(next,
                                now + (ideal_backend
                                           ? 0.0
                                           : env.backend().fetch_first_byte_ms(
                                                 rng) *
                                                 env.backend_slowdown()),
                                now, /*purge=*/false);
          }
        }
      }
      break;
    }
  }

  env.stats().breaker_open_transitions +=
      env.breaker().open_transitions() - trips_before;
  env.finish(result, key, now);
  ++env.stats().requests_served;
  return result;
}

}  // namespace vstream::cdn
