#include "cdn/cache.h"

#include <stdexcept>
#include <utility>

namespace vstream::cdn {

CacheStore::CacheStore(std::uint64_t capacity_bytes,
                       std::unique_ptr<CachePolicy> policy)
    : capacity_bytes_(capacity_bytes), policy_(std::move(policy)) {
  if (policy_ == nullptr) throw std::invalid_argument("CacheStore: null policy");
}

bool CacheStore::touch(const ChunkKey& key) { return policy_->on_access(key); }

void CacheStore::reserve(std::size_t expected_objects) {
  objects_.reserve(expected_objects);
  policy_->reserve(expected_objects);
}

bool CacheStore::insert(const ChunkKey& key, std::uint64_t size_bytes) {
  if (size_bytes > capacity_bytes_) return false;
  const auto [it, inserted] = objects_.try_emplace(key, size_bytes);
  if (!inserted) {
    policy_->on_access(key);
    return true;
  }
  // Evict until the new object fits.  The policy has not seen `key` yet,
  // so victims come from the previously resident set, exactly as when the
  // eviction loop preceded the index insertion.
  while (used_bytes_ + size_bytes > capacity_bytes_) {
    const ChunkKey victim = policy_->choose_victim();
    erase(victim);
    ++evictions_;
  }
  used_bytes_ += size_bytes;
  policy_->on_insert(key, size_bytes);
  return true;
}

void CacheStore::erase(const ChunkKey& key) {
  const auto it = objects_.find(key);
  if (it == objects_.end()) return;
  used_bytes_ -= it->second;
  objects_.erase(it);
  policy_->on_evict(key);
}

const char* to_string(CacheLevel level) {
  switch (level) {
    case CacheLevel::kRam: return "ram-hit";
    case CacheLevel::kDisk: return "disk-hit";
    case CacheLevel::kMiss: return "miss";
  }
  return "unknown";
}

TwoLevelCache::TwoLevelCache(std::uint64_t ram_bytes, std::uint64_t disk_bytes,
                             PolicyKind policy)
    : ram_(ram_bytes, make_policy(policy)),
      disk_(disk_bytes, make_policy(policy)) {}

CacheLevel TwoLevelCache::lookup(const ChunkKey& key,
                                 std::uint64_t size_bytes) {
  if (ram_.touch(key)) {
    disk_.touch(key);  // keep disk recency in sync for RAM-resident objects
    return CacheLevel::kRam;
  }
  if (disk_.touch(key)) {
    ram_.insert(key, size_bytes);  // promote: it is now "fresh in memory"
    return CacheLevel::kDisk;
  }
  return CacheLevel::kMiss;
}

CacheLevel TwoLevelCache::peek(const ChunkKey& key) const {
  if (ram_.contains(key)) return CacheLevel::kRam;
  if (disk_.contains(key)) return CacheLevel::kDisk;
  return CacheLevel::kMiss;
}

void TwoLevelCache::admit(const ChunkKey& key, std::uint64_t size_bytes) {
  disk_.insert(key, size_bytes);
  ram_.insert(key, size_bytes);
}

void TwoLevelCache::reserve(std::size_t ram_objects, std::size_t disk_objects) {
  ram_.reserve(ram_objects);
  disk_.reserve(disk_objects);
}

void TwoLevelCache::warm_bulk(
    std::span<const std::pair<ChunkKey, std::uint64_t>> disk_items,
    std::span<const std::pair<ChunkKey, std::uint64_t>> ram_items) {
  disk_.reserve(disk_items.size());
  ram_.reserve(ram_items.size());
  for (const auto& [key, size] : disk_items) disk_.insert(key, size);
  for (const auto& [key, size] : ram_items) ram_.insert(key, size);
}

}  // namespace vstream::cdn
