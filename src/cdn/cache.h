// Cache stores: a single sized level, and the ATS-style two-level
// (RAM over disk) hierarchy.
//
// ATS checks the main-memory cache first, then the disk cache, and finally
// fetches from the backend (§4.1).  RAM eviction is harmless (the object is
// still on disk); disk eviction loses the object entirely.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>

#include "cdn/cache_policy.h"
#include "cdn/chunk.h"

namespace vstream::cdn {

/// One capacity-bounded cache level with a pluggable eviction policy.
class CacheStore {
 public:
  CacheStore(std::uint64_t capacity_bytes, std::unique_ptr<CachePolicy> policy);

  bool contains(const ChunkKey& key) const { return objects_.contains(key); }

  /// Record a hit (moves the object in the policy's order).  Returns
  /// whether the object is resident — the policy tracks exactly the
  /// resident set, so presence and the recency update cost one lookup.
  bool touch(const ChunkKey& key);

  /// Pre-size the index and policy for about this many resident objects.
  void reserve(std::size_t expected_objects);

  /// Insert an object, evicting as needed.  Objects larger than the whole
  /// capacity are not admitted.  Returns false if not admitted.
  bool insert(const ChunkKey& key, std::uint64_t size_bytes);

  /// Remove a specific object if present.
  void erase(const ChunkKey& key);

  std::uint64_t used_bytes() const { return used_bytes_; }
  std::uint64_t capacity_bytes() const { return capacity_bytes_; }
  std::size_t object_count() const { return objects_.size(); }
  std::uint64_t eviction_count() const { return evictions_; }
  const CachePolicy& policy() const { return *policy_; }

 private:
  std::uint64_t capacity_bytes_;
  std::uint64_t used_bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::unique_ptr<CachePolicy> policy_;
  std::unordered_map<ChunkKey, std::uint64_t, ChunkKeyHash> objects_;
};

/// Where a lookup was satisfied.
enum class CacheLevel { kRam, kDisk, kMiss };

const char* to_string(CacheLevel level);

/// RAM + disk hierarchy.  Lookup promotes disk hits into RAM; admission
/// after a backend fetch writes both levels (write-through), matching ATS's
/// behaviour of serving from RAM when the object is "fresh in memory".
class TwoLevelCache {
 public:
  TwoLevelCache(std::uint64_t ram_bytes, std::uint64_t disk_bytes,
                PolicyKind policy);

  /// Look up and update recency state; promotes disk hits to RAM.
  CacheLevel lookup(const ChunkKey& key, std::uint64_t size_bytes);

  /// Read-only probe: where the object would be found, without touching
  /// recency state or promoting between levels.  Safe to call concurrently
  /// (the sharded engine probes one shared warm archive from all workers).
  CacheLevel peek(const ChunkKey& key) const;

  /// Admit a freshly fetched object (backend miss path).
  void admit(const ChunkKey& key, std::uint64_t size_bytes);

  /// Pre-size both levels (expected resident object counts).
  void reserve(std::size_t ram_objects, std::size_t disk_objects);

  /// Bulk warm-load: directly insert each level's final resident set
  /// (deduplicated, oldest -> newest, pre-sized to fit capacity), skipping
  /// the write-through admission churn.  Precondition: both levels empty.
  void warm_bulk(
      std::span<const std::pair<ChunkKey, std::uint64_t>> disk_items,
      std::span<const std::pair<ChunkKey, std::uint64_t>> ram_items);

  const CacheStore& ram() const { return ram_; }
  const CacheStore& disk() const { return disk_; }

 private:
  CacheStore ram_;
  CacheStore disk_;
};

}  // namespace vstream::cdn
