// Chunk identity and sizing.
//
// A video is split into fixed-duration chunks (6 seconds in the paper's
// dataset, §3), each encoded at every bitrate of the ladder; the CDN caches
// (video, chunk index, bitrate) objects independently.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/time.h"

namespace vstream::cdn {

struct ChunkKey {
  std::uint32_t video_id = 0;
  std::uint32_t chunk_index = 0;   ///< 0-based position within the video
  std::uint32_t bitrate_kbps = 0;  ///< encoded bitrate

  friend bool operator==(const ChunkKey&, const ChunkKey&) = default;
};

/// Encoded size of a chunk at its nominal bitrate: bitrate * duration.
constexpr std::uint64_t chunk_bytes(std::uint32_t bitrate_kbps,
                                    double duration_s) {
  return static_cast<std::uint64_t>(bitrate_kbps * duration_s * 1000.0 / 8.0);
}

/// Deterministic VBR size factor in [0.75, 1.25]: encoders spend more bits
/// on complex scenes, so chunks of the "same bitrate" vary in size.  The
/// factor is a pure function of (video, chunk), so every component —
/// warming, serving, transfer — sees the same bytes for the same object.
double vbr_factor(std::uint32_t video_id, std::uint32_t chunk_index);

/// Encoded size with the per-chunk VBR factor applied.
std::uint64_t chunk_bytes_vbr(std::uint32_t bitrate_kbps, double duration_s,
                              std::uint32_t video_id,
                              std::uint32_t chunk_index);

struct ChunkKeyHash {
  std::size_t operator()(const ChunkKey& k) const {
    std::uint64_t h = (static_cast<std::uint64_t>(k.video_id) << 32) ^
                      (static_cast<std::uint64_t>(k.chunk_index) << 12) ^
                      k.bitrate_kbps;
    // 64-bit mix (splitmix64 finalizer).
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return static_cast<std::size_t>(h);
  }
};

}  // namespace vstream::cdn
