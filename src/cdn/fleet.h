// CDN fleet: PoPs of ATS servers plus the traffic-engineering mapping.
//
// The paper's traffic engineering "maps clients to CDN nodes using a
// function of geography, latency, load, cache likelihood" and "tries to
// route clients to the server that is likely to have a hot cache" (§4.1).
// We model that as: nearest PoP by geography, then within the PoP a
// cache-focused server choice (hash of the video id, so each video's
// requests concentrate on one server).  The paper's §4.1-3 take-away —
// explicitly partitioning the popular head across servers — is the
// alternative routing policy used by the ablation bench.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cdn/ats_server.h"
#include "net/geo.h"

namespace vstream::cdn {

struct FleetConfig {
  std::uint32_t pop_count = 4;         ///< PoPs placed on the first N US cities
  std::uint32_t servers_per_pop = 4;
  AtsConfig server;
  BackendConfig backend;
  /// Fraction of the video head treated as "popular" by the partitioning
  /// policy (paper: top 10% of videos = 66% of playbacks).
  double popular_head_fraction = 0.10;
};

enum class RoutingPolicy {
  kCacheFocused,           ///< video -> one server per PoP (hot cache)
  kPopularityPartitioned,  ///< popular head spread across servers
};

const char* to_string(RoutingPolicy policy);

struct ServerRef {
  std::uint32_t pop = 0;
  std::uint32_t server = 0;
  friend bool operator==(const ServerRef&, const ServerRef&) = default;
};

class Fleet {
 public:
  /// `catalog_size` is needed to decide head membership for partitioning;
  /// ranks are 1-based with 1 the most popular video.
  Fleet(FleetConfig config, std::size_t catalog_size);

  std::uint32_t nearest_pop(const net::GeoPoint& client) const;

  /// Choose the serving server for a session.  `video_rank` is the video's
  /// popularity rank (1 = hottest); `session_token` spreads partitioned
  /// requests across servers.
  ///
  /// Failure semantics: a down server fails over to the next live server of
  /// the PoP; an entirely-dead PoP fails over to the nearest live PoP
  /// (paying the extra propagation RTT).  When the whole fleet is down the
  /// nominal assignment is returned with is_down(ref) still true — callers
  /// own the error model (core::Pipeline times requests out, retries with
  /// backoff, and eventually abandons the session).
  ///
  /// `now` enables health-aware steering: a nominal assignment whose
  /// health_score(ref, now) is below 1.0 (inside an overload window, or
  /// with an open circuit breaker) is swapped for the healthiest live
  /// server of the PoP.  With no overload windows and closed breakers
  /// every score is 1.0 and routing is unchanged.
  ServerRef route(const net::GeoPoint& client, std::uint32_t video_id,
                  std::size_t video_rank, std::uint64_t session_token,
                  RoutingPolicy policy, sim::Ms now = 0.0) const;

  /// Client-driven mid-session failover: the next live server a client
  /// should retry after `from` failed (down, timing out, or erroring).
  /// Prefers the PoP's other servers (cold cache for this video), then the
  /// video's cache-focused server in the nearest live other PoP (warm cache
  /// but extra RTT).  Returns `from` unchanged when nothing live exists.
  /// Among live same-PoP candidates the healthiest (health_score at `now`)
  /// wins, earliest probe breaking ties.
  ServerRef failover(ServerRef from, const net::GeoPoint& client,
                     std::uint32_t video_id, sim::Ms now = 0.0) const;

  AtsServer& server(ServerRef ref);
  const AtsServer& server(ServerRef ref) const;

  /// The within-PoP server index a video concentrates on under
  /// cache-focused routing (used for cache warming).
  std::uint32_t server_index_for_video(std::uint32_t video_id) const;

  /// Mark a server down/up.  route() fails over to the next live server of
  /// the PoP — whose cache was warmed for a *different* video set, so a
  /// failover also shows the cache-focused mapping's cold-cache cost
  /// ("directing client requests to different servers", §1).
  void set_server_down(ServerRef ref, bool down = true);
  /// Mark a whole PoP dark (power/uplink blackout), independent of the
  /// per-server flags: recovery restores exactly the servers that were not
  /// individually crashed.
  void set_pop_down(std::uint32_t pop, bool down = true);
  bool is_down(ServerRef ref) const;
  bool is_pop_down(std::uint32_t pop) const { return pop_down_.at(pop); }

  /// Drive a server's overload factor (faults::FaultKind::kOverload).
  void set_overload(ServerRef ref, double factor) {
    server(ref).set_overload(factor);
  }
  /// Register a deterministic overload window: between `start` and `end`
  /// the server's offered load is `factor` times nominal capacity.  The
  /// fault injector registers these from the schedule at construction, so
  /// health-aware routing is a pure function of (schedule, now) and
  /// identical on every shard — it never reads live serving state.
  void add_overload_window(ServerRef ref, sim::Ms start, sim::Ms end,
                           double factor);
  /// Routing health of a server at `now`: 1.0 when healthy; watermark /
  /// factor inside an overload window past the shed watermark; halved
  /// again while the server's (coupled-mode) circuit breaker is open.
  double health_score(ServerRef ref, sim::Ms now) const;
  /// True if at least one server of the PoP can serve.
  bool pop_live(std::uint32_t pop) const;
  /// True when no server anywhere can serve.
  bool all_down() const;

  const net::City& pop_city(std::uint32_t pop) const;
  std::uint32_t pop_count() const { return config_.pop_count; }
  std::uint32_t servers_per_pop() const { return config_.servers_per_pop; }
  const FleetConfig& config() const { return config_; }

 private:
  /// Nearest PoP with at least one live server, excluding `exclude_pop`
  /// (pass pop_count() to exclude nothing); pop_count() when none is live.
  std::uint32_t nearest_live_pop(const net::GeoPoint& client,
                                 std::uint32_t exclude_pop) const;

  struct OverloadWindow {
    ServerRef ref;
    sim::Ms start = 0.0;
    sim::Ms end = 0.0;
    double factor = 1.0;
  };

  FleetConfig config_;
  std::size_t popular_head_ranks_;
  std::vector<net::City> pop_cities_;
  std::vector<OverloadWindow> overload_windows_;
  // servers_[pop * servers_per_pop + server]; unique_ptr keeps AtsServer
  // addresses stable (it is move-averse because of its internal maps).
  std::vector<std::unique_ptr<AtsServer>> servers_;
  std::vector<bool> down_;
  std::vector<bool> pop_down_;
};

}  // namespace vstream::cdn
