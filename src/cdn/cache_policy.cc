#include "cdn/cache_policy.h"

#include <cassert>
#include <stdexcept>

namespace vstream::cdn {

// ---------------------------------------------------------------- LRU

std::uint32_t LruPolicy::acquire_node() {
  if (free_head_ != kNil) {
    const std::uint32_t index = free_head_;
    free_head_ = nodes_[index].next;
    return index;
  }
  nodes_.push_back(Node{});
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void LruPolicy::unlink(std::uint32_t index) {
  Node& node = nodes_[index];
  if (node.prev != kNil) {
    nodes_[node.prev].next = node.next;
  } else {
    head_ = node.next;
  }
  if (node.next != kNil) {
    nodes_[node.next].prev = node.prev;
  } else {
    tail_ = node.prev;
  }
}

void LruPolicy::link_front(std::uint32_t index) {
  Node& node = nodes_[index];
  node.prev = kNil;
  node.next = head_;
  if (head_ != kNil) nodes_[head_].prev = index;
  head_ = index;
  if (tail_ == kNil) tail_ = index;
}

void LruPolicy::on_insert(const ChunkKey& key, std::uint64_t /*size_bytes*/) {
  assert(!position_.contains(key));
  const std::uint32_t index = acquire_node();
  nodes_[index].key = key;
  link_front(index);
  position_.emplace(key, index);
}

bool LruPolicy::on_access(const ChunkKey& key) {
  const auto it = position_.find(key);
  if (it == position_.end()) return false;  // tolerate spurious notifications
  const std::uint32_t index = it->second;
  if (index != head_) {
    unlink(index);
    link_front(index);
  }
  return true;
}

ChunkKey LruPolicy::choose_victim() {
  if (tail_ == kNil) throw std::logic_error("LruPolicy: empty cache");
  return nodes_[tail_].key;
}

void LruPolicy::on_evict(const ChunkKey& key) {
  const auto it = position_.find(key);
  if (it == position_.end()) return;
  const std::uint32_t index = it->second;
  unlink(index);
  nodes_[index].next = free_head_;  // return the slot to the free list
  free_head_ = index;
  position_.erase(it);
}

void LruPolicy::reserve(std::size_t expected_objects) {
  nodes_.reserve(expected_objects);
  position_.reserve(expected_objects);
}

// ---------------------------------------------------------------- LFU

void PerfectLfuPolicy::on_insert(const ChunkKey& key,
                                 std::uint64_t /*size_bytes*/) {
  assert(!resident_.contains(key));
  const std::uint64_t freq = ++history_[key];  // history survives eviction
  const Entry entry{freq, next_seq_++};
  resident_[key] = entry;
  by_freq_[entry] = key;
}

bool PerfectLfuPolicy::on_access(const ChunkKey& key) {
  const auto it = resident_.find(key);
  if (it == resident_.end()) return false;
  by_freq_.erase(it->second);
  const Entry entry{++history_[key], next_seq_++};
  it->second = entry;
  by_freq_[entry] = key;
  return true;
}

ChunkKey PerfectLfuPolicy::choose_victim() {
  if (by_freq_.empty()) throw std::logic_error("PerfectLfuPolicy: empty cache");
  return by_freq_.begin()->second;
}

void PerfectLfuPolicy::on_evict(const ChunkKey& key) {
  const auto it = resident_.find(key);
  if (it == resident_.end()) return;
  by_freq_.erase(it->second);
  resident_.erase(it);
}

// ------------------------------------------------------------- GD-Size

void GdSizePolicy::on_insert(const ChunkKey& key, std::uint64_t size_bytes) {
  assert(!resident_.contains(key));
  sizes_[key] = std::max<std::uint64_t>(1, size_bytes);
  const Entry entry{inflation_ + 1.0 / static_cast<double>(sizes_[key]),
                    next_seq_++};
  resident_[key] = entry;
  by_priority_[entry] = key;
}

bool GdSizePolicy::on_access(const ChunkKey& key) {
  const auto it = resident_.find(key);
  if (it == resident_.end()) return false;
  by_priority_.erase(it->second);
  const Entry entry{inflation_ + 1.0 / static_cast<double>(sizes_[key]),
                    next_seq_++};
  it->second = entry;
  by_priority_[entry] = key;
  return true;
}

ChunkKey GdSizePolicy::choose_victim() {
  if (by_priority_.empty()) throw std::logic_error("GdSizePolicy: empty cache");
  // Ageing: future insertions/accesses are credited relative to the evicted
  // object's priority.
  inflation_ = by_priority_.begin()->first.priority;
  return by_priority_.begin()->second;
}

void GdSizePolicy::on_evict(const ChunkKey& key) {
  const auto it = resident_.find(key);
  if (it == resident_.end()) return;
  by_priority_.erase(it->second);
  resident_.erase(it);
  sizes_.erase(key);
}

// ------------------------------------------------------------- factory

std::unique_ptr<CachePolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru: return std::make_unique<LruPolicy>();
    case PolicyKind::kPerfectLfu: return std::make_unique<PerfectLfuPolicy>();
    case PolicyKind::kGdSize: return std::make_unique<GdSizePolicy>();
  }
  throw std::invalid_argument("make_policy: unknown kind");
}

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru: return "lru";
    case PolicyKind::kPerfectLfu: return "perfect-lfu";
    case PolicyKind::kGdSize: return "gd-size";
  }
  return "unknown";
}

}  // namespace vstream::cdn
