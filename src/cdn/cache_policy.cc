#include "cdn/cache_policy.h"

#include <cassert>
#include <stdexcept>

namespace vstream::cdn {

// ---------------------------------------------------------------- LRU

void LruPolicy::on_insert(const ChunkKey& key, std::uint64_t /*size_bytes*/) {
  assert(!position_.contains(key));
  order_.push_front(key);
  position_[key] = order_.begin();
}

void LruPolicy::on_access(const ChunkKey& key) {
  const auto it = position_.find(key);
  if (it == position_.end()) return;  // tolerate spurious notifications
  order_.splice(order_.begin(), order_, it->second);
}

ChunkKey LruPolicy::choose_victim() {
  if (order_.empty()) throw std::logic_error("LruPolicy: empty cache");
  return order_.back();
}

void LruPolicy::on_evict(const ChunkKey& key) {
  const auto it = position_.find(key);
  if (it == position_.end()) return;
  order_.erase(it->second);
  position_.erase(it);
}

// ---------------------------------------------------------------- LFU

void PerfectLfuPolicy::on_insert(const ChunkKey& key,
                                 std::uint64_t /*size_bytes*/) {
  assert(!resident_.contains(key));
  const std::uint64_t freq = ++history_[key];  // history survives eviction
  const Entry entry{freq, next_seq_++};
  resident_[key] = entry;
  by_freq_[entry] = key;
}

void PerfectLfuPolicy::on_access(const ChunkKey& key) {
  const auto it = resident_.find(key);
  if (it == resident_.end()) return;
  by_freq_.erase(it->second);
  const Entry entry{++history_[key], next_seq_++};
  it->second = entry;
  by_freq_[entry] = key;
}

ChunkKey PerfectLfuPolicy::choose_victim() {
  if (by_freq_.empty()) throw std::logic_error("PerfectLfuPolicy: empty cache");
  return by_freq_.begin()->second;
}

void PerfectLfuPolicy::on_evict(const ChunkKey& key) {
  const auto it = resident_.find(key);
  if (it == resident_.end()) return;
  by_freq_.erase(it->second);
  resident_.erase(it);
}

// ------------------------------------------------------------- GD-Size

void GdSizePolicy::on_insert(const ChunkKey& key, std::uint64_t size_bytes) {
  assert(!resident_.contains(key));
  sizes_[key] = std::max<std::uint64_t>(1, size_bytes);
  const Entry entry{inflation_ + 1.0 / static_cast<double>(sizes_[key]),
                    next_seq_++};
  resident_[key] = entry;
  by_priority_[entry] = key;
}

void GdSizePolicy::on_access(const ChunkKey& key) {
  const auto it = resident_.find(key);
  if (it == resident_.end()) return;
  by_priority_.erase(it->second);
  const Entry entry{inflation_ + 1.0 / static_cast<double>(sizes_[key]),
                    next_seq_++};
  it->second = entry;
  by_priority_[entry] = key;
}

ChunkKey GdSizePolicy::choose_victim() {
  if (by_priority_.empty()) throw std::logic_error("GdSizePolicy: empty cache");
  // Ageing: future insertions/accesses are credited relative to the evicted
  // object's priority.
  inflation_ = by_priority_.begin()->first.priority;
  return by_priority_.begin()->second;
}

void GdSizePolicy::on_evict(const ChunkKey& key) {
  const auto it = resident_.find(key);
  if (it == resident_.end()) return;
  by_priority_.erase(it->second);
  resident_.erase(it);
  sizes_.erase(key);
}

// ------------------------------------------------------------- factory

std::unique_ptr<CachePolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru: return std::make_unique<LruPolicy>();
    case PolicyKind::kPerfectLfu: return std::make_unique<PerfectLfuPolicy>();
    case PolicyKind::kGdSize: return std::make_unique<GdSizePolicy>();
  }
  throw std::invalid_argument("make_policy: unknown kind");
}

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru: return "lru";
    case PolicyKind::kPerfectLfu: return "perfect-lfu";
    case PolicyKind::kGdSize: return "gd-size";
  }
  return "unknown";
}

}  // namespace vstream::cdn
