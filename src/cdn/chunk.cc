#include "cdn/chunk.h"

namespace vstream::cdn {

double vbr_factor(std::uint32_t video_id, std::uint32_t chunk_index) {
  // splitmix64 of the (video, chunk) pair -> uniform in [0.75, 1.25].
  std::uint64_t h = (static_cast<std::uint64_t>(video_id) << 32) |
                    (static_cast<std::uint64_t>(chunk_index) + 0x9e3779b9u);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  const double unit =
      static_cast<double>(h >> 11) / static_cast<double>(1ull << 53);
  return 0.75 + 0.5 * unit;
}

std::uint64_t chunk_bytes_vbr(std::uint32_t bitrate_kbps, double duration_s,
                              std::uint32_t video_id,
                              std::uint32_t chunk_index) {
  const double nominal =
      static_cast<double>(chunk_bytes(bitrate_kbps, duration_s));
  return static_cast<std::uint64_t>(nominal *
                                    vbr_factor(video_id, chunk_index));
}

}  // namespace vstream::cdn
