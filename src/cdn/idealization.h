// Counterfactual idealization: replay a session with exactly ONE
// subsystem made perfect, and the QoE delta against the factual replay is
// that subsystem's contribution to the session's problems.
//
// This is the attribution methodology of Arye et al. ("Poor Video
// Streaming Performance Explained (and Fixed)"), made exact by our
// engine's determinism: a replayed session consumes the same RNG
// substream, faces the same fault epochs and the same warm cache content,
// so the *only* difference between baseline and idealized replay is the
// idealized subsystem — blame fractions are deterministic, not sampled.
//
// Exactly one subsystem is idealized per replay (policies compose by
// running more replays, not by stacking flags):
//
//   kCache     every request is a RAM hit: no disk seeks, no open-retry
//              timer, no backend fetch on the serving path.
//   kNetwork   lossless client path: zero random loss (including injected
//              loss bursts) and no peak-hour congestion offset.
//   kBackend   instant origin: zero first-byte latency, never down, never
//              slowed — misses still traverse the open-retry timer.
//   kOverload  no overload protection engages and no overload exists:
//              nothing is shed, breakers read closed, retry budget is
//              boundless.
//   kAbr       oracle rate selection: the highest ladder rung sustainable
//              at the session's true bottleneck bandwidth, which the
//              simulator knows and a production ABR can only estimate.
//
// The hooks live in cdn::serve_pipeline (cache/backend/overload) and
// engine::SessionRuntime (network/ABR); a null policy (or kNone) is the
// bit-exact factual replay.
#pragma once

#include <cstdint>

namespace vstream::cdn {

enum class IdealizedSubsystem : std::uint8_t {
  kNone = 0,
  kCache,
  kNetwork,
  kBackend,
  kOverload,
  kAbr,
};

/// All idealizable subsystems, in the canonical blame-report order.
inline constexpr IdealizedSubsystem kIdealizedSubsystems[] = {
    IdealizedSubsystem::kCache,    IdealizedSubsystem::kNetwork,
    IdealizedSubsystem::kBackend,  IdealizedSubsystem::kOverload,
    IdealizedSubsystem::kAbr,
};
inline constexpr std::size_t kIdealizedSubsystemCount = 5;

constexpr const char* idealization_name(IdealizedSubsystem s) {
  switch (s) {
    case IdealizedSubsystem::kNone:
      return "none";
    case IdealizedSubsystem::kCache:
      return "cache";
    case IdealizedSubsystem::kNetwork:
      return "network";
    case IdealizedSubsystem::kBackend:
      return "backend";
    case IdealizedSubsystem::kOverload:
      return "overload";
    case IdealizedSubsystem::kAbr:
      return "abr";
  }
  return "none";
}

struct IdealizationPolicy {
  IdealizedSubsystem target = IdealizedSubsystem::kNone;

  constexpr bool zero_latency_cache() const {
    return target == IdealizedSubsystem::kCache;
  }
  constexpr bool lossless_network() const {
    return target == IdealizedSubsystem::kNetwork;
  }
  constexpr bool instant_backend() const {
    return target == IdealizedSubsystem::kBackend;
  }
  constexpr bool no_overload() const {
    return target == IdealizedSubsystem::kOverload;
  }
  constexpr bool oracle_abr() const {
    return target == IdealizedSubsystem::kAbr;
  }
};

}  // namespace vstream::cdn
