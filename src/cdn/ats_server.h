// ATS-like CDN edge server.
//
// Models the Apache Traffic Server behaviours the paper's §4.1 findings
// hinge on:
//
//   * a FIFO accept queue served by a thread pool (D_wait grows only under
//     heavy load — the paper finds servers well-provisioned),
//   * D_open: header parsing + first attempt to open the cache object,
//   * the asynchronous open-read-retry timer: when the object is not
//     immediately available in RAM, ATS retries the open after a fixed
//     10 ms timer — the cause of the bimodal D_read distribution (Fig. 5),
//   * disk reads whose seek latency grows for cold (unpopular) content
//     (Fig. 6b), and
//   * backend fetches on misses (D_BE), pipelined with delivery.
//
// serve() returns the per-chunk server-side record of Table 2.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cdn/backend.h"
#include "cdn/cache.h"
#include "cdn/chunk.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace vstream::cdn {

struct AtsConfig {
  std::uint64_t ram_bytes = 8ull << 30;    ///< main-memory cache
  std::uint64_t disk_bytes = 256ull << 30; ///< disk cache
  PolicyKind policy = PolicyKind::kLru;

  std::uint32_t threads = 64;  ///< service thread pool size

  sim::Ms open_retry_ms = 10.0;  ///< ATS open-read-retry timeout

  // Latency components (log-normal medians/shapes), calibrated to Fig. 5:
  // most chunks have D_wait < 1 ms and small D_open; RAM reads give a total
  // hit latency with median ~2 ms.
  sim::Ms wait_median_ms = 0.25;
  double wait_sigma = 0.8;
  sim::Ms open_median_ms = 0.6;
  double open_sigma = 0.7;
  sim::Ms ram_read_median_ms = 1.1;
  double ram_read_sigma = 0.55;
  sim::Ms disk_read_median_ms = 2.5;
  double disk_read_sigma = 0.5;

  /// Extra disk seek latency for cold content: grows with the time since
  /// the video was last touched on this server, up to seek_max_ms.
  sim::Ms seek_max_ms = 22.0;
  sim::Ms seek_cold_after_ms = sim::seconds(30.0);

  /// Latency of a locally generated error response (5xx on a miss during a
  /// backend outage): header parse + small formatting time, no cache read.
  sim::Ms error_response_median_ms = 0.4;
  double error_response_sigma = 0.5;

  /// Paper take-away §4.1-2: "the persistence of cache misses could be
  /// addressed by pre-fetching the subsequent chunks of a video session
  /// after the first miss."  On a miss, the server asynchronously fetches
  /// this many following chunks of the same (video, bitrate) from the
  /// backend and admits them; the session's later requests then hit.
  /// 0 disables prefetching (the paper's production behaviour).
  std::uint32_t prefetch_on_miss = 0;
};

struct ServeResult {
  sim::Ms dwait_ms = 0.0;  ///< time in the accept queue
  sim::Ms dopen_ms = 0.0;  ///< header read -> first open attempt
  sim::Ms dread_ms = 0.0;  ///< first byte read + write to socket
                           ///< (includes retry timer, disk seek or D_BE)
  sim::Ms dbe_ms = 0.0;    ///< backend latency (misses only)
  CacheLevel level = CacheLevel::kMiss;
  bool retry_timer_fired = false;
  /// Error response instead of bytes (cache miss while the backend is
  /// unreachable).  The latency fields cover the error path; clients retry
  /// or fail over.
  bool failed = false;
  /// Served from cache while the backend was unreachable (graceful
  /// degradation: cached objects keep flowing through an origin outage).
  bool stale = false;

  bool cache_hit() const { return level != CacheLevel::kMiss; }
  /// D_CDN of Eq. 1: everything the CDN adds before the first byte, with
  /// the backend share reported separately as D_BE.
  sim::Ms dcdn_ms() const { return dwait_ms + dopen_ms + dread_ms - dbe_ms; }
  /// Total server-side latency as the paper plots it ("total-hit" /
  /// "total-miss" in Fig. 5).
  sim::Ms total_ms() const { return dwait_ms + dopen_ms + dread_ms; }
};

/// Serve counters decoupled from the server object, so the sharded engine
/// can account them per shard and sum across shards after the run.  Field
/// meanings match the AtsServer accessors of the same names.
struct ServerStats {
  std::uint64_t requests_served = 0;
  std::uint64_t ram_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t prefetched_chunks = 0;
  std::uint64_t collapsed_misses = 0;
  std::uint64_t backend_fetches = 0;
  std::uint64_t stale_serves = 0;
  std::uint64_t backend_errors = 0;

  double miss_ratio() const {
    return requests_served == 0
               ? 0.0
               : static_cast<double>(misses) /
                     static_cast<double>(requests_served);
  }
  std::uint64_t backend_requests() const {
    return backend_fetches + prefetched_chunks;
  }
  ServerStats& operator+=(const ServerStats& other);
};

/// One session's private view of a server's mutable serving state, used by
/// serve_isolated().  The sharded engine requires serve outcomes to be a
/// pure function of (immutable warm cache, the session's own request
/// history, the session's RNG substream) — otherwise outcomes would depend
/// on how sessions interleave, which changes with the shard count.  Every
/// cross-session coupling of serve() therefore lives here, scoped to one
/// session: its own admissions/promotions, its own seek recency, its own
/// in-flight backend fetches.
struct SessionServerState {
  /// Chunks this session promoted into or admitted to RAM on this server.
  std::unordered_set<ChunkKey, ChunkKeyHash> ram_overlay;
  /// When this session last touched each video here (seek recency).
  std::unordered_map<std::uint32_t, sim::Ms> last_video_access;
  /// This session's own in-flight backend fetches (read-while-writer and
  /// prefetch pipelining).
  std::unordered_map<ChunkKey, sim::Ms, ChunkKeyHash> inflight_fetches;
};

class AtsServer {
 public:
  AtsServer(AtsConfig config, BackendConfig backend);

  /// Serve one chunk request arriving at `now` (simulated clock).
  ServeResult serve(const ChunkKey& key, std::uint64_t size_bytes, sim::Ms now,
                    sim::Rng& rng);

  /// Session-isolated twin of serve(): branch-for-branch the same latency
  /// model, but all mutable state is external — cache content comes from
  /// the immutable `warm` archive plus the session's own overlay, counters
  /// go to `stats`, and there is no cross-session thread-pool queueing (the
  /// paper finds production servers well-provisioned, §4.1: D_wait is
  /// scheduling noise).  Degradation flags (backend down/slow, disk
  /// degraded) are still read from this server, which the fault injector
  /// drives per shard.  const: concurrent calls on the same server object
  /// with distinct rng/session/stats are race-free.
  ServeResult serve_isolated(const ChunkKey& key, std::uint64_t size_bytes,
                             sim::Ms now, sim::Rng& rng,
                             const TwoLevelCache& warm,
                             SessionServerState& session,
                             ServerStats& stats) const;

  /// Pre-load an object into the cache hierarchy without serving a request
  /// (steady-state warm-up; does not touch the hit/miss counters).
  void warm(const ChunkKey& key, std::uint64_t size_bytes) {
    cache_.admit(key, size_bytes);
  }

  /// Exponentially decayed request arrival rate (requests/s) — the load
  /// proxy the paper estimates as "parallel HTTP requests ... per second"
  /// (§4.1-2 footnote).
  double load() const;

  /// When the earliest service thread frees up (exposed for tests).
  sim::Ms earliest_thread_free_ms() const;

  std::uint64_t requests_served() const { return requests_served_; }
  std::uint64_t ram_hits() const { return ram_hits_; }
  std::uint64_t disk_hits() const { return disk_hits_; }
  std::uint64_t misses() const { return misses_; }
  double miss_ratio() const;
  /// Chunks fetched speculatively after misses (backend load the §4.1-2
  /// recommendation pays for its latency win).
  std::uint64_t prefetched_chunks() const { return prefetched_chunks_; }
  /// Misses that piggybacked on an already in-flight backend fetch for the
  /// same object (collapsed forwarding — the backend-protection role the
  /// paper ascribes to the retry timer, §4.1-2 take-away 2).
  std::uint64_t collapsed_misses() const { return collapsed_misses_; }
  /// Actual backend fetches issued: misses - collapsed + prefetches.
  std::uint64_t backend_requests() const {
    return backend_fetches_ + prefetched_chunks_;
  }

  // ---- degraded-operation modes (driven by faults::FaultInjector) ----

  /// Backend outage: misses return errors (ServeResult::failed) instead of
  /// fetching; cache hits keep serving and are marked stale.
  void set_backend_down(bool down) { backend_down_ = down; }
  bool backend_down() const { return backend_down_; }
  /// Multiply backend first-byte latency (origin brownout).  1.0 = healthy.
  void set_backend_slowdown(double factor) { backend_slowdown_ = factor; }
  /// Multiply disk read + seek latency (failing/rebuilding disk).
  void set_disk_degradation(double factor) { disk_slowdown_ = factor; }

  /// Cache hits served while the backend was down.
  std::uint64_t stale_serves() const { return stale_serves_; }
  /// Misses turned into error responses by a backend outage.
  std::uint64_t backend_errors() const { return backend_errors_; }

  const TwoLevelCache& cache() const { return cache_; }
  const AtsConfig& config() const { return config_; }

 private:
  /// Cold-content seek penalty from the video's access recency.
  sim::Ms seek_penalty_ms(std::uint32_t video_id, sim::Ms now) const;

  /// Same penalty computed from an externally supplied recency map
  /// (serve_isolated's per-session view).
  sim::Ms seek_penalty_from_ms(
      const std::unordered_map<std::uint32_t, sim::Ms>& last_access,
      std::uint32_t video_id, sim::Ms now) const;

  AtsConfig config_;
  TwoLevelCache cache_;
  Backend backend_;

  std::unordered_map<std::uint32_t, sim::Ms> last_video_access_;
  std::uint64_t requests_served_ = 0;
  std::uint64_t ram_hits_ = 0;
  std::uint64_t disk_hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t prefetched_chunks_ = 0;
  std::uint64_t collapsed_misses_ = 0;
  std::uint64_t backend_fetches_ = 0;
  std::uint64_t stale_serves_ = 0;
  std::uint64_t backend_errors_ = 0;

  bool backend_down_ = false;
  double backend_slowdown_ = 1.0;
  double disk_slowdown_ = 1.0;

  /// In-flight backend fetches (key -> completion time): concurrent misses
  /// for the same object wait for the ongoing fetch instead of issuing
  /// another backend request.
  std::unordered_map<ChunkKey, sim::Ms, ChunkKeyHash> inflight_fetches_;

  // Load tracking: exponentially decayed request rate (requests/sec).
  double rate_estimate_ = 0.0;
  sim::Ms last_arrival_ms_ = -1.0;

  // Thread pool occupancy: when each service thread becomes free.  A
  // request waits (D_wait) until the earliest thread frees, then occupies
  // it for its service time.
  std::vector<sim::Ms> thread_free_at_;
};

}  // namespace vstream::cdn
