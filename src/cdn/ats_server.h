// ATS-like CDN edge server.
//
// Models the Apache Traffic Server behaviours the paper's §4.1 findings
// hinge on:
//
//   * a FIFO accept queue served by a thread pool (D_wait grows only under
//     heavy load — the paper finds servers well-provisioned),
//   * D_open: header parsing + first attempt to open the cache object,
//   * the asynchronous open-read-retry timer: when the object is not
//     immediately available in RAM, ATS retries the open after a fixed
//     10 ms timer — the cause of the bimodal D_read distribution (Fig. 5),
//   * disk reads whose seek latency grows for cold (unpopular) content
//     (Fig. 6b), and
//   * backend fetches on misses (D_BE), pipelined with delivery.
//
// serve() returns the per-chunk server-side record of Table 2.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cdn/backend.h"
#include "cdn/cache.h"
#include "cdn/chunk.h"
#include "cdn/idealization.h"
#include "cdn/overload.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace vstream::cdn {

struct AtsConfig {
  std::uint64_t ram_bytes = 8ull << 30;    ///< main-memory cache
  std::uint64_t disk_bytes = 256ull << 30; ///< disk cache
  PolicyKind policy = PolicyKind::kLru;

  std::uint32_t threads = 64;  ///< service thread pool size

  sim::Ms open_retry_ms = 10.0;  ///< ATS open-read-retry timeout

  // Latency components (log-normal medians/shapes), calibrated to Fig. 5:
  // most chunks have D_wait < 1 ms and small D_open; RAM reads give a total
  // hit latency with median ~2 ms.
  sim::Ms wait_median_ms = 0.25;
  double wait_sigma = 0.8;
  sim::Ms open_median_ms = 0.6;
  double open_sigma = 0.7;
  sim::Ms ram_read_median_ms = 1.1;
  double ram_read_sigma = 0.55;
  sim::Ms disk_read_median_ms = 2.5;
  double disk_read_sigma = 0.5;

  /// Extra disk seek latency for cold content: grows with the time since
  /// the video was last touched on this server, up to seek_max_ms.
  sim::Ms seek_max_ms = 22.0;
  sim::Ms seek_cold_after_ms = sim::seconds(30.0);

  /// Latency of a locally generated error response (5xx on a miss during a
  /// backend outage): header parse + small formatting time, no cache read.
  sim::Ms error_response_median_ms = 0.4;
  double error_response_sigma = 0.5;

  /// Paper take-away §4.1-2: "the persistence of cache misses could be
  /// addressed by pre-fetching the subsequent chunks of a video session
  /// after the first miss."  On a miss, the server asynchronously fetches
  /// this many following chunks of the same (video, bitrate) from the
  /// backend and admits them; the session's later requests then hit.
  /// 0 disables prefetching (the paper's production behaviour).
  std::uint32_t prefetch_on_miss = 0;

  /// Overload protection: circuit breaker, retry budget, hedged fetches,
  /// priority load shedding (see cdn/overload.h).
  OverloadConfig overload;
};

/// Per-request context for the overload-protection layer.  Defaulted so
/// pre-overload call sites keep their meaning (a fresh, steady-priority
/// request).
struct ServeOptions {
  RequestPriority priority = RequestPriority::kSteady;
  /// Re-issued request (player retry after a timeout/error); backend
  /// re-fetches for retries draw on the server's retry budget.
  bool retry = false;
};

struct ServeResult {
  sim::Ms dwait_ms = 0.0;  ///< time in the accept queue
  sim::Ms dopen_ms = 0.0;  ///< header read -> first open attempt
  sim::Ms dread_ms = 0.0;  ///< first byte read + write to socket
                           ///< (includes retry timer, disk seek or D_BE)
  sim::Ms dbe_ms = 0.0;    ///< backend latency (misses only)
  CacheLevel level = CacheLevel::kMiss;
  bool retry_timer_fired = false;
  /// Error response instead of bytes (cache miss while the backend is
  /// unreachable).  The latency fields cover the error path; clients retry
  /// or fail over.
  bool failed = false;
  /// Served from cache while the backend was unreachable (graceful
  /// degradation: cached objects keep flowing through an origin outage).
  bool stale = false;

  // ---- overload protection (see cdn/overload.h) ----

  /// Rejected by priority load shedding (failed is also set; the response
  /// is a cheap local 503).
  bool shed = false;
  /// Cached object served stale-while-revalidate under an open breaker
  /// (no origin consult; revalidation deferred until the breaker closes).
  bool swr = false;
  /// A hedge fetch to a second backend replica was issued for this miss.
  bool hedged = false;
  /// The hedge's first byte beat the primary's (D_BE is the hedge's).
  bool hedge_won = false;
  /// A retry needed a backend fetch but the retry budget was dry
  /// (failed is also set; the retry storm stops here).
  bool budget_denied = false;
  /// Breaker state observed while serving this request.
  BreakerState breaker = BreakerState::kClosed;

  bool cache_hit() const { return level != CacheLevel::kMiss; }
  /// D_CDN of Eq. 1: everything the CDN adds before the first byte, with
  /// the backend share reported separately as D_BE.
  sim::Ms dcdn_ms() const { return dwait_ms + dopen_ms + dread_ms - dbe_ms; }
  /// Total server-side latency as the paper plots it ("total-hit" /
  /// "total-miss" in Fig. 5).
  sim::Ms total_ms() const { return dwait_ms + dopen_ms + dread_ms; }
};

/// Serve counters decoupled from the server object, so the sharded engine
/// can account them per shard and sum across shards after the run.  Field
/// meanings match the AtsServer accessors of the same names.
struct ServerStats {
  std::uint64_t requests_served = 0;
  std::uint64_t ram_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t prefetched_chunks = 0;
  std::uint64_t collapsed_misses = 0;
  std::uint64_t backend_fetches = 0;
  std::uint64_t stale_serves = 0;
  std::uint64_t backend_errors = 0;

  // ---- overload protection ----
  std::uint64_t shed_requests = 0;         ///< requests + suppressed prefetches
  std::uint64_t hedged_fetches = 0;        ///< hedges issued (extra backend load)
  std::uint64_t hedge_wins = 0;            ///< hedge beat the primary
  std::uint64_t breaker_open_transitions = 0;  ///< closed/half-open -> open
  std::uint64_t retry_budget_exhausted = 0;    ///< retries denied a re-fetch
  std::uint64_t swr_serves = 0;            ///< stale-while-revalidate serves

  double miss_ratio() const {
    return requests_served == 0
               ? 0.0
               : static_cast<double>(misses) /
                     static_cast<double>(requests_served);
  }
  /// Actual backend load: regular fetches + prefetches + hedges.  Hedges
  /// hit a real origin replica, so they count; budget-denied retries never
  /// reach the backend, so they are structurally excluded.
  std::uint64_t backend_requests() const {
    return backend_fetches + prefetched_chunks + hedged_fetches;
  }
  ServerStats& operator+=(const ServerStats& other);
};

/// One session's private view of a server's mutable serving state, used by
/// serve_isolated().  The sharded engine requires serve outcomes to be a
/// pure function of (immutable warm cache, the session's own request
/// history, the session's RNG substream) — otherwise outcomes would depend
/// on how sessions interleave, which changes with the shard count.  Every
/// cross-session coupling of serve() therefore lives here, scoped to one
/// session: its own admissions/promotions, its own seek recency, its own
/// in-flight backend fetches.
struct SessionServerState {
  /// Chunks this session promoted into or admitted to RAM on this server.
  std::unordered_set<ChunkKey, ChunkKeyHash> ram_overlay;
  /// When this session last touched each video here (seek recency).
  std::unordered_map<std::uint32_t, sim::Ms> last_video_access;
  /// This session's own in-flight backend fetches (read-while-writer and
  /// prefetch pipelining).
  std::unordered_map<ChunkKey, sim::Ms, ChunkKeyHash> inflight_fetches;
  /// This session's view of the server's circuit breaker, fed only by its
  /// own observed backend outcomes — a pure function of the session's
  /// history, which is what keeps sharded output partition-invariant.
  CircuitBreaker breaker;
  /// This session's slice of the server's retry budget (same rationale).
  RetryBudget retry_budget;
};

class AtsServer {
 public:
  AtsServer(AtsConfig config, BackendConfig backend);

  /// Serve one chunk request arriving at `now` (simulated clock).  Both
  /// entry points run the single cdn::serve_pipeline (serve_pipeline.h)
  /// against mode-specific ServeEnv backends; `ideal` (null for factual
  /// serving) is the counterfactual-replay hook (cdn/idealization.h).
  ServeResult serve(const ChunkKey& key, std::uint64_t size_bytes, sim::Ms now,
                    sim::Rng& rng, const ServeOptions& opts = {},
                    const IdealizationPolicy* ideal = nullptr);

  /// Session-isolated twin of serve(): the same pipeline, but all mutable
  /// state is external — cache content comes from the immutable `warm`
  /// archive plus the session's own overlay, counters go to `stats`, and
  /// there is no cross-session thread-pool queueing (the paper finds
  /// production servers well-provisioned, §4.1: D_wait is scheduling
  /// noise).  Degradation flags (backend down/slow, disk degraded) are
  /// still read from this server, which the fault injector drives per
  /// shard.  const: concurrent calls on the same server object with
  /// distinct rng/session/stats are race-free.
  ServeResult serve_isolated(const ChunkKey& key, std::uint64_t size_bytes,
                             sim::Ms now, sim::Rng& rng,
                             const TwoLevelCache& warm,
                             SessionServerState& session, ServerStats& stats,
                             const ServeOptions& opts = {},
                             const IdealizationPolicy* ideal = nullptr) const;

  /// Pre-load an object into the cache hierarchy without serving a request
  /// (steady-state warm-up; does not touch the hit/miss counters).
  void warm(const ChunkKey& key, std::uint64_t size_bytes) {
    cache_.admit(key, size_bytes);
  }

  /// Pre-size the cache indexes (expected resident objects per level) —
  /// called by the warm-up before bulk admission.
  void reserve_cache(std::size_t ram_objects, std::size_t disk_objects) {
    cache_.reserve(ram_objects, disk_objects);
  }

  /// Exponentially decayed request arrival rate (requests/s) — the load
  /// proxy the paper estimates as "parallel HTTP requests ... per second"
  /// (§4.1-2 footnote).
  double load() const;

  /// When the earliest service thread frees up (exposed for tests).
  sim::Ms earliest_thread_free_ms() const;

  std::uint64_t requests_served() const { return stats_.requests_served; }
  std::uint64_t ram_hits() const { return stats_.ram_hits; }
  std::uint64_t disk_hits() const { return stats_.disk_hits; }
  std::uint64_t misses() const { return stats_.misses; }
  double miss_ratio() const { return stats_.miss_ratio(); }
  /// Chunks fetched speculatively after misses (backend load the §4.1-2
  /// recommendation pays for its latency win).
  std::uint64_t prefetched_chunks() const { return stats_.prefetched_chunks; }
  /// Misses that piggybacked on an already in-flight backend fetch for the
  /// same object (collapsed forwarding — the backend-protection role the
  /// paper ascribes to the retry timer, §4.1-2 take-away 2).
  std::uint64_t collapsed_misses() const { return stats_.collapsed_misses; }
  /// Actual backend fetches issued: misses - collapsed + prefetches +
  /// hedges.  Hedges reach a real origin replica, so they count toward
  /// backend load; budget-denied retries never leave the server and are
  /// structurally excluded.
  std::uint64_t backend_requests() const { return stats_.backend_requests(); }
  /// The coupled-mode counters as one ServerStats block (the same struct
  /// the sharded engine accounts per shard).
  const ServerStats& stats() const { return stats_; }

  // ---- degraded-operation modes (driven by faults::FaultInjector) ----

  /// Backend outage: misses return errors (ServeResult::failed) instead of
  /// fetching; cache hits keep serving and are marked stale.
  void set_backend_down(bool down) { backend_down_ = down; }
  bool backend_down() const { return backend_down_; }
  /// Multiply backend first-byte latency (origin brownout).  1.0 = healthy.
  void set_backend_slowdown(double factor) { backend_slowdown_ = factor; }
  /// Multiply disk read + seek latency (failing/rebuilding disk).
  void set_disk_degradation(double factor) { disk_slowdown_ = factor; }
  /// Overload epoch (flash crowd): offered load as a multiple of nominal
  /// capacity.  1.0 = normal; above the shed watermark the server sheds
  /// low-priority work (driven by faults::FaultKind::kOverload).
  void set_overload(double factor) { overload_factor_ = factor; }
  double overload() const { return overload_factor_; }

  /// Cache hits served while the backend was down.
  std::uint64_t stale_serves() const { return stats_.stale_serves; }
  /// Misses turned into error responses by a backend outage.
  std::uint64_t backend_errors() const { return stats_.backend_errors; }

  // ---- overload protection (coupled-mode counters; the sharded engine
  // accounts the same events into per-shard ServerStats) ----
  std::uint64_t shed_requests() const { return stats_.shed_requests; }
  std::uint64_t hedged_fetches() const { return stats_.hedged_fetches; }
  std::uint64_t hedge_wins() const { return stats_.hedge_wins; }
  std::uint64_t breaker_open_transitions() const {
    return breaker_.open_transitions();
  }
  std::uint64_t retry_budget_exhausted() const {
    return stats_.retry_budget_exhausted;
  }
  std::uint64_t swr_serves() const { return stats_.swr_serves; }
  /// Coupled-mode breaker state at `now` (advances open -> half-open).
  BreakerState breaker_state(sim::Ms now) {
    return breaker_.state(config_.overload, now);
  }
  /// Const peek of the same (no state advance; Fleet health scoring).
  BreakerState peek_breaker_state(sim::Ms now) const {
    return breaker_.peek_state(config_.overload, now);
  }

  const TwoLevelCache& cache() const { return cache_; }
  const AtsConfig& config() const { return config_; }

 private:
  // The coupled and session-isolated ServeEnv backends (defined in
  // ats_server.cc) plug this server's state into cdn::serve_pipeline.
  friend struct FleetServeEnv;
  friend struct SessionServeEnv;

  /// Cold-content seek penalty from the video's access recency.
  sim::Ms seek_penalty_ms(std::uint32_t video_id, sim::Ms now) const;

  /// Same penalty computed from an externally supplied recency map
  /// (the session-isolated env's per-session view).
  sim::Ms seek_penalty_from_ms(
      const std::unordered_map<std::uint32_t, sim::Ms>& last_access,
      std::uint32_t video_id, sim::Ms now) const;

  AtsConfig config_;
  TwoLevelCache cache_;
  Backend backend_;

  std::unordered_map<std::uint32_t, sim::Ms> last_video_access_;
  /// Coupled-mode serve counters (one block, same struct the sharded
  /// engine accounts per shard and sums after the run).
  ServerStats stats_;

  bool backend_down_ = false;
  double backend_slowdown_ = 1.0;
  double disk_slowdown_ = 1.0;
  double overload_factor_ = 1.0;

  // ---- overload protection (coupled mode) ----
  CircuitBreaker breaker_;
  RetryBudget budget_;

  /// In-flight backend fetches (key -> completion time): concurrent misses
  /// for the same object wait for the ongoing fetch instead of issuing
  /// another backend request.
  std::unordered_map<ChunkKey, sim::Ms, ChunkKeyHash> inflight_fetches_;

  // Load tracking: exponentially decayed request rate (requests/sec).
  double rate_estimate_ = 0.0;
  sim::Ms last_arrival_ms_ = -1.0;

  // Thread pool occupancy: when each service thread becomes free.  A
  // request waits (D_wait) until the earliest thread frees, then occupies
  // it for its service time.
  std::vector<sim::Ms> thread_free_at_;
};

}  // namespace vstream::cdn
