#include "cdn/fleet.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace vstream::cdn {

namespace {

std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace

const char* to_string(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kCacheFocused: return "cache-focused";
    case RoutingPolicy::kPopularityPartitioned: return "popularity-partitioned";
  }
  return "unknown";
}

Fleet::Fleet(FleetConfig config, std::size_t catalog_size)
    : config_(config),
      popular_head_ranks_(static_cast<std::size_t>(
          config.popular_head_fraction * static_cast<double>(catalog_size))) {
  const auto cities = net::us_cities();
  if (config_.pop_count == 0 || config_.servers_per_pop == 0) {
    throw std::invalid_argument("Fleet: need at least one PoP and server");
  }
  if (config_.pop_count > cities.size()) {
    throw std::invalid_argument("Fleet: more PoPs than available cities");
  }
  pop_cities_.assign(cities.begin(), cities.begin() + config_.pop_count);
  servers_.reserve(static_cast<std::size_t>(config_.pop_count) *
                   config_.servers_per_pop);
  for (std::uint32_t i = 0; i < config_.pop_count * config_.servers_per_pop;
       ++i) {
    servers_.push_back(
        std::make_unique<AtsServer>(config_.server, config_.backend));
  }
  down_.assign(servers_.size(), false);
  pop_down_.assign(config_.pop_count, false);
}

void Fleet::set_server_down(ServerRef ref, bool down) {
  down_.at(static_cast<std::size_t>(ref.pop) * config_.servers_per_pop +
           ref.server) = down;
}

void Fleet::set_pop_down(std::uint32_t pop, bool down) {
  pop_down_.at(pop) = down;
}

bool Fleet::is_down(ServerRef ref) const {
  return pop_down_.at(ref.pop) ||
         down_.at(static_cast<std::size_t>(ref.pop) * config_.servers_per_pop +
                  ref.server);
}

bool Fleet::pop_live(std::uint32_t pop) const {
  if (pop_down_.at(pop)) return false;
  for (std::uint32_t s = 0; s < config_.servers_per_pop; ++s) {
    if (!is_down({pop, s})) return true;
  }
  return false;
}

bool Fleet::all_down() const {
  for (std::uint32_t pop = 0; pop < config_.pop_count; ++pop) {
    if (pop_live(pop)) return false;
  }
  return true;
}

std::uint32_t Fleet::nearest_live_pop(const net::GeoPoint& client,
                                      std::uint32_t exclude_pop) const {
  std::uint32_t best = config_.pop_count;
  double best_km = std::numeric_limits<double>::infinity();
  for (std::uint32_t i = 0; i < pop_cities_.size(); ++i) {
    if (i == exclude_pop || !pop_live(i)) continue;
    const double km = net::haversine_km(client, pop_cities_[i].location);
    if (km < best_km) {
      best_km = km;
      best = i;
    }
  }
  return best;
}

std::uint32_t Fleet::nearest_pop(const net::GeoPoint& client) const {
  std::uint32_t best = 0;
  double best_km = std::numeric_limits<double>::infinity();
  for (std::uint32_t i = 0; i < pop_cities_.size(); ++i) {
    const double km = net::haversine_km(client, pop_cities_[i].location);
    if (km < best_km) {
      best_km = km;
      best = i;
    }
  }
  return best;
}

void Fleet::add_overload_window(ServerRef ref, sim::Ms start, sim::Ms end,
                                double factor) {
  overload_windows_.push_back({ref, start, end, factor});
}

double Fleet::health_score(ServerRef ref, sim::Ms now) const {
  double factor = 1.0;
  for (const OverloadWindow& window : overload_windows_) {
    if (window.ref == ref && now >= window.start && now < window.end) {
      factor = std::max(factor, window.factor);
    }
  }
  const double watermark = config_.server.overload.shed_watermark;
  double score =
      (watermark <= 0.0 || factor <= watermark) ? 1.0 : watermark / factor;
  if (server(ref).peek_breaker_state(now) == BreakerState::kOpen) {
    score *= 0.5;  // open breaker: misses fast-fail there
  }
  return score;
}

ServerRef Fleet::route(const net::GeoPoint& client, std::uint32_t video_id,
                       std::size_t video_rank, std::uint64_t session_token,
                       RoutingPolicy policy, sim::Ms now) const {
  ServerRef ref;
  ref.pop = nearest_pop(client);
  const bool spread =
      policy == RoutingPolicy::kPopularityPartitioned &&
      video_rank <= popular_head_ranks_;
  // Cache-focused: all requests for a video land on one server of the PoP.
  // Partitioned: the popular head is spread per-session across servers.
  const std::uint64_t token =
      spread ? mix64(video_id ^ mix64(session_token)) : mix64(video_id);
  ref.server = static_cast<std::uint32_t>(token % config_.servers_per_pop);
  // Entirely-dead PoP: cross-PoP failover to the nearest live PoP.  The
  // rescued sessions pay the extra propagation RTT; the video's
  // cache-focused server index is PoP-independent, so the replacement PoP
  // serves it with a warm cache.
  if (!pop_live(ref.pop)) {
    const std::uint32_t live = nearest_live_pop(client, config_.pop_count);
    if (live < config_.pop_count) ref.pop = live;
    // Whole fleet down: keep the nominal assignment; is_down(ref) stays
    // true and callers model the error (timeouts + abandonment).
  }
  // Fail over within the PoP: probe the next indexes until a live server
  // is found.
  for (std::uint32_t probe = 0;
       probe < config_.servers_per_pop && is_down(ref); ++probe) {
    ref.server = (ref.server + 1) % config_.servers_per_pop;
  }
  // Health-aware steering: leave the nominal (hot-cache) assignment only
  // when it is unhealthy, and then take the healthiest live alternative of
  // the PoP (earliest probe wins ties).  Deterministic: health depends only
  // on the registered overload windows / breaker state at `now`.
  if (!is_down(ref) && health_score(ref, now) < 1.0) {
    ServerRef best = ref;
    double best_score = health_score(ref, now);
    for (std::uint32_t probe = 1; probe < config_.servers_per_pop; ++probe) {
      const ServerRef candidate{
          ref.pop, (ref.server + probe) % config_.servers_per_pop};
      if (is_down(candidate)) continue;
      const double score = health_score(candidate, now);
      if (score > best_score) {
        best_score = score;
        best = candidate;
      }
    }
    ref = best;
  }
  return ref;
}

ServerRef Fleet::failover(ServerRef from, const net::GeoPoint& client,
                          std::uint32_t video_id, sim::Ms now) const {
  // Same-PoP first: rotate to the next live server (cold cache for this
  // video, but no distance penalty).  Among live candidates the healthiest
  // wins; earliest probe breaks ties, so with uniform health this is the
  // original next-live-server rotation.
  {
    ServerRef best = from;
    double best_score = -1.0;
    for (std::uint32_t probe = 1; probe < config_.servers_per_pop; ++probe) {
      const ServerRef candidate{
          from.pop, (from.server + probe) % config_.servers_per_pop};
      if (is_down(candidate)) continue;
      const double score = health_score(candidate, now);
      if (score > best_score) {
        best_score = score;
        best = candidate;
      }
      if (best_score >= 1.0) break;  // can't beat healthy; keep earliest
    }
    if (best_score >= 0.0) return best;
  }
  // Cross-PoP: the video's cache-focused server in the nearest live other
  // PoP (warm cache, extra RTT).
  const std::uint32_t live = nearest_live_pop(client, from.pop);
  if (live < config_.pop_count) {
    ServerRef candidate{live, server_index_for_video(video_id)};
    for (std::uint32_t probe = 0;
         probe < config_.servers_per_pop && is_down(candidate); ++probe) {
      candidate.server = (candidate.server + 1) % config_.servers_per_pop;
    }
    return candidate;
  }
  return from;  // nothing live anywhere; the caller keeps timing out
}

std::uint32_t Fleet::server_index_for_video(std::uint32_t video_id) const {
  return static_cast<std::uint32_t>(mix64(video_id) % config_.servers_per_pop);
}

AtsServer& Fleet::server(ServerRef ref) {
  return *servers_.at(static_cast<std::size_t>(ref.pop) *
                          config_.servers_per_pop +
                      ref.server);
}

const AtsServer& Fleet::server(ServerRef ref) const {
  return *servers_.at(static_cast<std::size_t>(ref.pop) *
                          config_.servers_per_pop +
                      ref.server);
}

const net::City& Fleet::pop_city(std::uint32_t pop) const {
  return pop_cities_.at(pop);
}

}  // namespace vstream::cdn
