// Backend (origin) service model.
//
// On a CDN cache miss the chunk is fetched from the backend; the paper
// measures this as D_BE (including network delay to the backend) and reports
// that misses raise median server latency ~40x (2 ms -> 80 ms, §4.1-1).
// Characterizing backend internals is out of scope in the paper (§2.1) and
// here: a latency distribution suffices.
#pragma once

#include "sim/rng.h"
#include "sim/time.h"

namespace vstream::cdn {

struct BackendConfig {
  sim::Ms rtt_ms = 30.0;            ///< CDN PoP <-> backend network RTT
  sim::Ms service_median_ms = 35.0; ///< origin lookup + first byte
  double service_sigma = 0.45;      ///< log-normal shape of service time
  /// Probability of a slow outlier (backend hiccup) and its multiplier.
  double hiccup_probability = 0.01;
  double hiccup_multiplier = 8.0;
};

class Backend {
 public:
  explicit Backend(BackendConfig config) : config_(config) {}

  /// D_BE: delay until the backend's first byte reaches the CDN server.
  sim::Ms fetch_first_byte_ms(sim::Rng& rng) const;

  /// Analytic p95 of fetch_first_byte_ms under healthy conditions (hiccups
  /// excluded — they are exactly the tail hedging is meant to cut).  Used
  /// as the default hedge trigger (OverloadConfig::hedge_after_ms == 0).
  sim::Ms p95_first_byte_ms() const;

  const BackendConfig& config() const { return config_; }

 private:
  BackendConfig config_;
};

}  // namespace vstream::cdn
